"""The generator's contract: deterministic, compilable, terminating."""

import pytest

from repro.difftest.generator import (GenConfig, ProgramGenerator,
                                      generate_program)
from repro.pylang.compiler import compile_source

SEEDS = list(range(100, 120))


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert generate_program(42) == generate_program(42)

    def test_different_seeds_differ(self):
        assert generate_program(1) != generate_program(2)

    def test_config_changes_program(self):
        assert generate_program(42) != generate_program(
            42, GenConfig.small())


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiles_under_tinypy(self, seed):
        compile_source(generate_program(seed))

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_small_profile_compiles(self, seed):
        compile_source(generate_program(seed, GenConfig.small()))

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_runs_to_completion_on_cpref(self, seed):
        from repro.difftest.oracle import run_cpref

        run = run_cpref(generate_program(seed))
        assert not run.truncated
        assert run.error is None
        # The epilogue prints live variables, so output is never empty.
        assert run.output

    def test_errors_only_when_allowed(self):
        # The default profile must never produce a guest error; the
        # allow_errors profile is permitted (not required) to.
        from repro.difftest.oracle import run_cpref

        for seed in SEEDS[:8]:
            run = run_cpref(generate_program(seed))
            assert run.error is None, (seed, run.error)


class TestFeatureKnobs:
    def test_feature_coverage_across_seeds(self):
        corpus = "\n".join(generate_program(seed) for seed in range(60))
        assert "def " in corpus
        assert "class " in corpus
        assert "while " in corpus
        assert "for " in corpus
        assert "{" in corpus          # dict literals
        assert ".append(" in corpus or ".sort(" in corpus
        # Big-int literals spill past 64 bits somewhere in 60 programs.
        assert any(len(tok.strip("-")) > 19
                   for line in corpus.splitlines()
                   for tok in line.replace("(", " ").replace(")", " ")
                   .split() if tok.strip("-").isdigit())

    def test_knobs_disable_features(self):
        config = GenConfig(functions=False, classes=False, dicts=False,
                           lists=False, strings=False, floats=False)
        for seed in range(20):
            source = generate_program(seed, config)
            assert "def " not in source
            assert "class " not in source
            assert "{" not in source

    def test_hot_loop_present(self):
        source = generate_program(7)
        assert "range(%d)" % GenConfig().hot_loop_iters in source


class TestScopeSafety:
    def test_while_counter_never_rebound_in_body(self):
        # A rebound while-counter can make the loop unbounded; the
        # generator protects it.  Verify on many seeds by parsing.
        import ast

        for seed in range(60):
            tree = ast.parse(generate_program(seed))
            for node in ast.walk(tree):
                if not isinstance(node, ast.While):
                    continue
                counter = node.test.left.id
                # Skip the mandatory increment (first stmt).
                for stmt in node.body[1:]:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Assign):
                            for target in sub.targets:
                                if isinstance(target, ast.Name):
                                    assert target.id != counter, (
                                        seed, counter)

    def test_protected_set_restored(self):
        gen = ProgramGenerator(5)
        gen.generate()
        assert gen.protected == set()
