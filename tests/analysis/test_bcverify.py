"""Seeded-mutation tests for the guest-bytecode abstract interpreter
and the quickening run-table checker (TinyPy and MiniLang)."""

from repro.analysis import (
    verify_mini_run_table,
    verify_minicode,
    verify_pycode,
    verify_run_table,
)
from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.minilang import Code as MiniCode
from repro.interp.minilang import MiniInterp
from repro.pylang import bytecode as bc
from repro.pylang.compiler import compile_source
from repro.pylang.interp import PyVM
from repro.pylang.quicken import build_run_table

FUNC_SRC = """
def f(n):
    i = 0
    while i < n:
        i = i + 1
    return i
f(8)
"""

RUN_SRC = """
def h(a):
    b = a
    c = b
    d = c
    return d
h(3)
"""


def make_code(pairs, consts=(None,), names=(), varnames=(), argcount=0):
    ops = [p[0] for p in pairs]
    args = [p[1] for p in pairs]
    return bc.PyCode("mut", ops, args, list(consts), list(names),
                     list(varnames), argcount)


def inner_code(source):
    outer = compile_source(source, "mut")
    return next(c.code for c in outer.consts
                if isinstance(c, bc.FunctionSpec))


def find_op(code, opnums):
    for pc, op in enumerate(code.ops):
        if op in opnums:
            return pc
    raise AssertionError("opcode not found")


# -- clean baselines ----------------------------------------------------------


def test_compiled_source_is_clean():
    report = verify_pycode(compile_source(FUNC_SRC, "mut"))
    assert not report.findings, [f.render() for f in report.findings]


def test_dead_default_return_epilogue_not_flagged():
    # Every compiled function carries a LOAD_CONST None; RETURN_VALUE
    # epilogue; when all paths return it is dead by construction.
    report = verify_pycode(compile_source(
        "def g():\n    return 1\ng()\n", "mut"))
    assert not report.warnings


# -- BC1xx: structure ---------------------------------------------------------


def test_bc101_jump_target_out_of_range():
    code = inner_code(FUNC_SRC)
    pc = find_op(code, (bc.JUMP, bc.POP_JUMP_IF_FALSE,
                        bc.POP_JUMP_IF_TRUE))
    code.args[pc] = 999
    assert verify_pycode(code, recurse=False).has("BC101")


def test_bc102_falls_off_the_end():
    code = make_code([(bc.LOAD_CONST, 0), (bc.POP_TOP, 0)])
    assert verify_pycode(code).has("BC102")


def test_bc102_ops_args_mismatch():
    code = inner_code(FUNC_SRC)
    code.args.pop()
    assert verify_pycode(code, recurse=False).has("BC102")


def test_bc102_empty_code():
    assert verify_pycode(make_code([])).has("BC102")


def test_bc103_const_index_out_of_range():
    code = inner_code(FUNC_SRC)
    code.args[find_op(code, (bc.LOAD_CONST,))] = 77
    assert verify_pycode(code, recurse=False).has("BC103")


def test_bc104_local_index_out_of_range():
    code = inner_code(FUNC_SRC)
    code.args[find_op(code, (bc.LOAD_FAST,))] = 55
    assert verify_pycode(code, recurse=False).has("BC104")


def test_bc105_unknown_opcode():
    code = inner_code(FUNC_SRC)
    code.ops[0] = 997
    assert verify_pycode(code, recurse=False).has("BC105")


# -- BC2xx: abstract stack ----------------------------------------------------


def test_bc201_merge_depth_mismatch():
    code = make_code([
        (bc.LOAD_CONST, 0),
        (bc.POP_JUMP_IF_FALSE, 4),
        (bc.LOAD_CONST, 0),
        (bc.JUMP, 4),
        (bc.LOAD_CONST, 0),   # depth 0 from pc1, depth 1 from pc3
        (bc.RETURN_VALUE, 0),
    ])
    assert verify_pycode(code).has("BC201")


def test_bc202_stack_underflow():
    code = make_code([(bc.POP_TOP, 0), (bc.LOAD_CONST, 0),
                      (bc.RETURN_VALUE, 0)])
    assert verify_pycode(code).has("BC202")


def test_bc203_funcspec_consumed_by_wrong_op():
    outer = compile_source(FUNC_SRC, "mut")
    outer.ops[find_op(outer, (bc.MAKE_FUNCTION,))] = bc.POP_TOP
    assert verify_pycode(outer, recurse=False).has("BC203")


def test_bc203_make_function_on_plain_constant():
    code = make_code([(bc.LOAD_CONST, 0), (bc.MAKE_FUNCTION, 0),
                      (bc.RETURN_VALUE, 0)])
    assert verify_pycode(code).has("BC203")


def test_bc301_unreachable_bytecode_warns():
    code = make_code([
        (bc.LOAD_CONST, 0),
        (bc.JUMP, 3),
        (bc.LOAD_CONST, 0),   # dead, and not a codegen artifact
        (bc.LOAD_CONST, 0),
        (bc.RETURN_VALUE, 0),
    ])
    report = verify_pycode(code)
    assert report.has("BC301")
    assert not report.errors  # warning severity


# -- BC4xx: TinyPy quickening run tables --------------------------------------


def real_run_table():
    code = inner_code(RUN_SRC)
    vm = PyVM(VMContext(SystemConfig()))
    table = build_run_table(vm, code)
    pc = next(pc for pc, entry in enumerate(table) if entry is not None)
    return code, list(table), pc


def test_real_run_table_is_clean():
    code, table, _pc = real_run_table()
    report = verify_run_table(code, table)
    assert not report.findings, [f.render() for f in report.findings]


def test_bc401_table_length_mismatch():
    code, table, _pc = real_run_table()
    assert verify_run_table(code, table[:-1]).has("BC401")


def test_bc402_run_span_out_of_range():
    code, table, pc = real_run_table()
    e = table[pc]
    table[pc] = (e[0], e[1], len(code.ops) + 5, e[3], e[4], e[5])
    assert verify_run_table(code, table).has("BC402")


def test_bc405_wrong_static_predecessor():
    code, table, pc = real_run_table()
    e = table[pc]
    assert code.ops[pc - 1] != bc.BINARY_ADD
    table[pc] = e[:5] + (bc.BINARY_ADD,)
    assert verify_run_table(code, table).has("BC405")


def test_bc405_wrong_last_opcode():
    code, table, pc = real_run_table()
    e = table[pc]
    table[pc] = (e[0], e[1], e[2], bc.MAKE_CLASS, e[4], e[5])
    assert verify_run_table(code, table).has("BC405")


def test_bc405_non_positive_insn_count():
    code, table, pc = real_run_table()
    e = table[pc]
    table[pc] = (e[0], e[1], e[2], e[3], 0, e[5])
    assert verify_run_table(code, table).has("BC405")


def _fused_entry(code, pc, end):
    span = tuple(zip(code.ops[pc:end], code.args[pc:end]))
    return (span, span, end, code.ops[end - 1], 4, code.ops[pc - 1])


def test_bc402_run_starts_at_pc_zero():
    code, table, pc = real_run_table()
    table[0] = table[pc]
    table[pc] = None
    assert verify_run_table(code, table).has("BC402")


def test_bc403_run_starts_at_merge_point():
    # pc 3 is the target of the backward jump at pc 4: a JitDriver
    # merge point, where hot-loop counting must not be skipped.
    code = make_code([
        (bc.LOAD_CONST, 0),
        (bc.STORE_FAST, 0),
        (bc.LOAD_FAST, 0),
        (bc.STORE_FAST, 0),
        (bc.JUMP, 3),
        (bc.LOAD_CONST, 0),
        (bc.RETURN_VALUE, 0),
    ], varnames=("x",))
    table = [None] * len(code.ops)
    table[3] = _fused_entry(code, 3, 4)
    assert verify_run_table(code, table).has("BC403")


def test_bc404_run_crosses_jump_target():
    code = make_code([
        (bc.LOAD_CONST, 0),
        (bc.STORE_FAST, 0),
        (bc.LOAD_FAST, 0),
        (bc.STORE_FAST, 0),   # jump target inside the run below
        (bc.JUMP, 3),
        (bc.LOAD_CONST, 0),
        (bc.RETURN_VALUE, 0),
    ], varnames=("x",))
    table = [None] * len(code.ops)
    table[2] = _fused_entry(code, 2, 4)
    assert verify_run_table(code, table).has("BC404")


def test_bc404_interior_pc_has_own_entry():
    code = make_code([
        (bc.LOAD_CONST, 0),
        (bc.STORE_FAST, 0),
        (bc.LOAD_FAST, 0),
        (bc.STORE_FAST, 0),
        (bc.LOAD_CONST, 0),
        (bc.RETURN_VALUE, 0),
    ], varnames=("x",))
    table = [None] * len(code.ops)
    table[1] = _fused_entry(code, 1, 4)
    table[2] = _fused_entry(code, 2, 4)
    assert verify_run_table(code, table).has("BC404")


# -- MiniLang -----------------------------------------------------------------


def test_minicode_clean():
    code = MiniCode("m", [("load_const", 1), ("store_local", 0),
                          ("load_local", 0), ("return", 0)], 1)
    assert not verify_minicode(code).findings


def test_mini_bc101_jump_out_of_range():
    code = MiniCode("m", [("load_const", 1), ("jump", 9),
                          ("return", 0)], 0)
    assert verify_minicode(code).has("BC101")


def test_mini_bc104_local_out_of_range():
    code = MiniCode("m", [("load_local", 3), ("return", 0)], 1)
    assert verify_minicode(code).has("BC104")


def test_mini_bc105_unknown_op():
    code = MiniCode("m", [("frobnicate", 0), ("return", 0)], 0)
    assert verify_minicode(code).has("BC105")


def test_mini_bc105_missing_call_target():
    code = MiniCode("m", [("load_const", 1), ("call", "nope"),
                          ("return", 0)], 0)
    assert verify_minicode(code).has("BC105")


def test_mini_bc201_merge_depth_mismatch():
    code = MiniCode("m", [("load_const", 0), ("load_const", 0),
                          ("jump", 1)], 0)
    assert verify_minicode(code).has("BC201")


def test_mini_bc202_underflow():
    code = MiniCode("m", [("pop", 0), ("return", 0)], 0)
    assert verify_minicode(code).has("BC202")


def mini_run_table():
    code = MiniCode("m", [
        ("load_const", 5),
        ("store_local", 0),
        ("load_local", 0),
        ("load_local", 0),
        ("add", 0),
        ("return", 0),
    ], 1)
    interp = MiniInterp(VMContext(SystemConfig()))
    table = interp._build_run_table(code)
    pc = next(pc for pc, entry in enumerate(table) if entry is not None)
    return code, list(table), pc


def test_mini_run_table_clean():
    code, table, _pc = mini_run_table()
    assert not verify_mini_run_table(code, table).findings


def test_mini_bc401_table_length():
    code, table, _pc = mini_run_table()
    assert verify_mini_run_table(code, table[:-1]).has("BC401")


def test_mini_bc405_replay_mismatch():
    code, table, pc = mini_run_table()
    e = table[pc]
    table[pc] = (e[0], tuple(reversed(e[1])), e[2], e[3])
    assert verify_mini_run_table(code, table).has("BC405")
