"""Figure 5: JIT warmup curves and break-even points."""

from conftest import save

from repro.harness import experiments


def test_fig5(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.fig5(quick=quick), rounds=1, iterations=1)
    save("fig5_warmup.txt", text)

    by_name = {r["benchmark"]: r for r in rows}
    with_nojit_be = [r for r in rows
                     if r["break_even_vs_nojit"] is not None]
    with_cpy_be = [r for r in rows
                   if r["break_even_vs_cpython"] is not None]
    # Paper shape: the break-even point vs PyPy-without-JIT is reached
    # early for most benchmarks...
    assert len(with_nojit_be) >= len(rows) * 0.6
    # ...and comes no later than the CPython break-even when both exist.
    for r in rows:
        if (r["break_even_vs_nojit"] is not None
                and r["break_even_vs_cpython"] is not None):
            assert (r["break_even_vs_nojit"]
                    <= r["break_even_vs_cpython"] * 1.25), r["benchmark"]
    # Benchmarks with big final speedups reach CPython break-even.
    best = max(rows, key=lambda r: r["rate_ratio_vs_cpython"])
    assert best["break_even_vs_cpython"] is not None
    assert len(with_cpy_be) >= 3
