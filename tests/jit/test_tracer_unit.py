"""Unit tests for tracer internals through the MiniLang VM."""

import pytest

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.minilang import Code, MiniInterp, W_Int
from repro.jit import ir


def make_setup(**jit_kwargs):
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 5
    for key, value in jit_kwargs.items():
        setattr(cfg.jit, key, value)
    ctx = VMContext(cfg)
    return ctx, MiniInterp(ctx)


LOOP = Code("loop", [
    ("load_local", 0),      # 0: header
    ("load_const", 0),      # 1
    ("eq", None),           # 2
    ("jump_if_false", 5),   # 3
    ("jump", 10),           # 4
    ("load_local", 0),      # 5
    ("load_const", 1),      # 6
    ("sub", None),          # 7
    ("store_local", 0),     # 8
    ("jump", 0),            # 9
    ("load_local", 0),      # 10
    ("return", None),       # 11
], n_locals=1)


def test_trace_has_merge_points_and_snapshot():
    ctx, interp = make_setup()
    interp.run(LOOP, (100,))
    loop = ctx.registry.traces[0]
    merge_points = [op for op in loop.ops
                    if op.name == "debug_merge_point"]
    assert merge_points
    guards = [op for op in loop.ops if op.is_guard()]
    assert guards
    for guard in guards:
        assert guard.snapshot is not None
        frame = guard.snapshot.innermost
        assert frame.code is LOOP
        assert 0 <= frame.pc < len(LOOP.ops)


def test_trace_limit_aborts():
    ctx, interp = make_setup(trace_limit=10, max_aborts=1)
    interp.run(LOOP, (200,))
    reasons = {reason for _key, reason in ctx.registry.aborts}
    assert "trace too long" in reasons
    assert ctx.registry.blacklist  # blacklisted after max_aborts


def test_blacklisted_loop_never_compiles():
    ctx, interp = make_setup(trace_limit=10, max_aborts=1)
    interp.run(LOOP, (500,))
    assert not any(t.kind == "loop" for t in ctx.registry.traces)


def test_entry_layout_matches_frame():
    ctx, interp = make_setup()
    interp.run(LOOP, (100,))
    loop = ctx.registry.traces[0]
    code, pc, n_locals, stack_depth = loop.entry_layout[0]
    assert code is LOOP
    assert pc == 0
    assert n_locals == 1
    assert stack_depth == 0
    assert len(loop.inputargs) == n_locals + stack_depth


def test_executions_counted():
    ctx, interp = make_setup()
    interp.run(LOOP, (300,))
    loop = next(t for t in ctx.registry.traces if t.kind == "loop")
    assert loop.executions >= 1
    from repro.jit.executor import sync_exec_counts

    sync_exec_counts(loop)
    assert loop.iterations > 100


def test_jit_disabled_records_nothing():
    cfg = SystemConfig.interpreter_only()
    ctx = VMContext(cfg)
    interp = MiniInterp(ctx)
    interp.run(LOOP, (100,))
    assert ctx.registry.traces == []
    assert ctx.tracer is None


def test_guard_pcs_unique_in_codegen():
    ctx, interp = make_setup()
    interp.run(LOOP, (300,))
    loop = ctx.registry.traces[0]
    source = loop._source
    assert "def _trace_fn" in source
    assert "while True:" in source


def test_overflow_guard_variants_recorded():
    # Force an overflow during tracing: records guard_overflow.
    code = Code("ovf", [
        ("load_local", 0),      # 0: header
        ("load_const", 0),
        ("eq", None),
        ("jump_if_false", 5),
        ("jump", 14),
        ("load_local", 1),      # 5
        ("load_local", 1),
        ("add", None),          # doubles: overflows eventually
        ("store_local", 1),
        ("load_local", 0),
        ("load_const", 1),
        ("sub", None),
        ("store_local", 0),
        ("jump", 0),            # 13
        ("load_local", 0),
        ("return", None),
    ], n_locals=2)
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 5
    cfg.jit.bridge_threshold = 2
    ctx = VMContext(cfg)
    interp = MiniInterp(ctx)
    # 62 doublings stay inside the 64-bit range (MiniLang's W_Big cannot
    # flow back into arithmetic; TinyPy covers the full overflow cycle).
    result = interp.run(code, (62, 1))
    assert isinstance(result, W_Int)
    all_ops = [op for t in ctx.registry.traces for op in t.ops]
    assert any(op.opnum == ir.GUARD_NO_OVERFLOW for op in all_ops)
