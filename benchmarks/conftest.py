import os

import pytest


@pytest.fixture(scope="session")
def quick():
    """Benches run at reduced sizes unless REPRO_FULL=1 is set."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def save(name, text):
    from repro.harness import report

    path = report.save_text(name, text)
    print("\n" + text)
    print("[saved to %s]" % path)
