"""TinyRkt s-expression reader."""

from repro.core.errors import CompilationError


class Symbol(str):
    """A Scheme symbol (distinct from string literals)."""

    __slots__ = ()

    def __repr__(self):
        return str(self)


def tokenize(text):
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\n\r":
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()[]":
            tokens.append("(" if ch in "([" else ")")
            i += 1
        elif ch == '"':
            j = i + 1
            parts = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    parts.append({"n": "\n", "t": "\t",
                                  '"': '"', "\\": "\\"}.get(escape, escape))
                    j += 2
                else:
                    parts.append(text[j])
                    j += 1
            if j >= n:
                raise CompilationError("unterminated string literal")
            tokens.append(('str', "".join(parts)))
            i = j + 1
        elif ch == "'":
            tokens.append("'")
            i += 1
        else:
            j = i
            while j < n and text[j] not in " \t\n\r()[];\"":
                j += 1
            tokens.append(('atom', text[i:j]))
            i = j
    return tokens


def _parse_atom(text):
    if text == "#t":
        return True
    if text == "#f":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.startswith("#\\"):
        name = text[2:]
        if name == "space":
            return ('char', " ")
        if name == "newline":
            return ('char', "\n")
        return ('char', name[0])
    return Symbol(text)


def parse_all(text):
    """Parse a program into a list of s-expression trees.

    Trees are: lists, Symbols, ints, floats, bools, ('char', c) pairs
    and plain strings for string literals.
    """
    tokens = tokenize(text)
    position = [0]

    def parse_one():
        if position[0] >= len(tokens):
            raise CompilationError("unexpected end of input")
        token = tokens[position[0]]
        position[0] += 1
        if token == "(":
            items = []
            while True:
                if position[0] >= len(tokens):
                    raise CompilationError("missing close paren")
                if tokens[position[0]] == ")":
                    position[0] += 1
                    return items
                items.append(parse_one())
        if token == ")":
            raise CompilationError("unexpected close paren")
        if token == "'":
            return [Symbol("quote"), parse_one()]
        kind, payload = token
        if kind == "str":
            return ('strlit', payload)
        return _parse_atom(payload)

    forms = []
    while position[0] < len(tokens):
        forms.append(parse_one())
    return forms
