"""Table I: PyPy Benchmark Suite — CPython vs PyPy-nojit vs PyPy-jit."""

from conftest import save

from repro.harness import experiments


def test_table1(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.table1(quick=quick), rounds=1, iterations=1)
    save("table1.txt", text)

    by_name = {r["benchmark"]: r for r in rows}
    # Paper shape: CPython beats the JIT-less RPython interpreter on
    # almost all benchmarks, usually by ~2x.
    slower = [r for r in rows if r["nojit_vc"] < 1.0]
    assert len(slower) >= len(rows) * 0.8
    # Paper shape: the meta-tracing JIT beats CPython on most benchmarks,
    # with a wide spread and the loop-heavy benchmarks at the top.
    faster = [r for r in rows if r["jit_vc"] > 1.0]
    # Quick sizes are warmup-dominated; full sizes must show the paper's
    # "almost all benchmarks" shape.
    assert len(faster) >= len(rows) * (0.5 if quick else 0.6)
    best = max(rows, key=lambda r: r["jit_vc"])
    assert best["jit_vc"] > 4.0
    # pidigits is bignum-library-bound: little or no JIT win (paper 0.7x).
    assert by_name["pidigits"]["jit_vc"] < 2.0
    # Paper shape: JIT-compiled code has noticeably lower branch MPKI.
    mean_jit_mpki = sum(r["jit_mpki"] for r in rows) / len(rows)
    mean_cpy_mpki = sum(r["cpython_mpki"] for r in rows) / len(rows)
    assert mean_jit_mpki < mean_cpy_mpki
