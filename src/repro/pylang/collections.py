"""TinyPy collections: lists (strategies), tuples, dicts, sets, strings,
instances (mapdict), subscripts and iteration — as a VM mixin."""

from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.isa import insns
from repro.pylang.objects import (
    STRATEGY_INT,
    STRATEGY_OBJECT,
    W_BigInt,
    W_Dict,
    W_DictIter,
    W_Float,
    W_Int,
    W_List,
    W_ListIter,
    W_None,
    W_Range,
    W_RangeIter,
    W_Set,
    W_Slice,
    W_Str,
    W_StrIter,
    W_Tuple,
    W_TupleIter,
    w_None,
)
from repro.pylang.ops import is_intish
from repro.rlib import rlist, rstr
from repro.rlib.costutil import charge_loop
from repro.rlib.rordereddict import (
    RDict,
    ll_dict_contains,
    ll_dict_delitem,
    ll_dict_len,
    ll_dict_lookup,
    ll_dict_setitem,
    ll_dict_values,
)


@aot("ObjectListStrategy.generalize", "I", "any")
def _generalize_to_object(ctx, storage, wrap_fn):
    items = storage.items
    charge_loop(ctx, max(1, len(items)), insns.mix(load=1, store=2, alu=2))
    for i in range(len(items)):
        items[i] = wrap_fn(items[i])
    return None


@aot("rlist.ll_storage_pop", "R", "any")
def _storage_pop(ctx, storage, index):
    items = storage.items
    charge_loop(ctx, max(1, len(items) - index), insns.mix(load=1, store=1))
    return items.pop(index)


@aot("mapdict.add_slot", "I", "any")
def _mapdict_add_slot(ctx, slots_items, w_value):
    charge_loop(ctx, max(1, len(slots_items)),
                insns.mix(load=1, store=1, alu=1))
    slots_items.append(w_value)
    return None


class CollectionsMixin(object):
    """Collection behaviour for the TinyPy VM."""

    # -- construction ---------------------------------------------------------

    def new_list(self, values_w):
        """Build a W_List choosing the storage strategy (PyPy-style)."""
        llops = self.llops
        all_ints = True
        for w_value in values_w:
            if llops.cls_of(w_value) is not W_Int:
                all_ints = False
                break
        if all_ints:
            raw = [self.int_val(w) for w in values_w]
            storage = llops.newarray_from(raw)
            return llops.new(W_List, strategy=STRATEGY_INT, storage=storage)
        storage = llops.newarray_from(values_w)
        return llops.new(W_List, strategy=STRATEGY_OBJECT, storage=storage)

    def new_tuple(self, values_w):
        items = self.llops.newarray_from(values_w)
        return self.llops.new(W_Tuple, items=items)

    def new_dict(self, pairs_w):
        llops = self.llops
        # The RDict payload is a fresh runtime object: it must be
        # created by a residual call (a raw object built at interpreter
        # level would be captured as a trace constant and shared by
        # every JIT execution of the allocation site).
        rdict = llops.residual_call(_new_rdict)
        w_dict = llops.new(W_Dict, rdict=rdict)
        for w_key, w_value in pairs_w:
            self.dict_setitem(w_dict, w_key, w_value)
        return w_dict

    def new_set(self, values_w):
        llops = self.llops
        rdict = llops.residual_call(_new_rdict)
        w_set = llops.new(W_Set, rdict=rdict)
        for w_value in values_w:
            self.set_add(w_set, w_value)
        return w_set

    # -- dict keys --------------------------------------------------------------

    def dict_key(self, w_key):
        """Raw hashable key for the RDict (with class guards)."""
        llops = self.llops
        cls = llops.cls_of(w_key)
        if cls is W_Str:
            return self.str_val(w_key)
        if is_intish(cls):
            return self.int_val(w_key)
        if cls is W_Float:
            return self.float_val(w_key)
        if cls is W_None:
            return None
        if cls is W_Tuple:
            # The composite key is built inside the AOT call (passing a
            # host tuple of red parts would constant-capture them).
            return llops.residual_call(_tuple_dict_key, w_key)
        if cls is W_BigInt:
            from repro.rlib import rbigint

            return llops.residual_call(rbigint.big_str, self.big_val(w_key))
        # Instances / classes / functions: identity keys.
        return w_key

    # -- dict operations -----------------------------------------------------------

    def dict_setitem(self, w_dict, w_key, w_value):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        key = self.dict_key(w_key)
        # The (w_key, w_value) pair is built inside the AOT call: red
        # values must flow into residual calls as individual arguments.
        llops.residual_call(_dict_setitem_pair, rdict, key, w_key, w_value)

    def dict_getitem(self, w_dict, w_key):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        key = self.dict_key(w_key)
        w_value = llops.residual_call(_dict_getvalue, rdict, key)
        if llops.is_null(w_value):
            raise GuestError("KeyError: %s" % self.repr_of(w_key))
        return w_value

    def pair_value(self, pair):
        """Second element of a raw (w_key, w_value) pair."""
        return self.llops.residual_call(_pair_second, pair)

    def pair_key(self, pair):
        return self.llops.residual_call(_pair_first, pair)

    def dict_get(self, w_dict, w_key, w_default):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        key = self.dict_key(w_key)
        w_value = llops.residual_call(_dict_getvalue, rdict, key)
        if llops.is_null(w_value):
            return w_default
        return w_value

    def dict_contains(self, w_dict, w_key):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        key = self.dict_key(w_key)
        return llops.is_true(llops.residual_call(ll_dict_contains,
                                                 rdict, key))

    def dict_delitem(self, w_dict, w_key):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        key = self.dict_key(w_key)
        found = llops.residual_call(ll_dict_delitem, rdict, key)
        if not llops.is_true(found):
            raise GuestError("KeyError: %s" % self.repr_of(w_key))

    def dict_len(self, w_dict):
        llops = self.llops
        rdict = llops.getfield(w_dict, "rdict")
        return llops.residual_call(ll_dict_len, rdict)

    # -- set operations ----------------------------------------------------------------

    def set_add(self, w_set, w_value):
        llops = self.llops
        rdict = llops.getfield(w_set, "rdict")
        key = self.dict_key(w_value)
        llops.residual_call(_dict_setitem_pair, rdict, key, w_value, w_None)

    def set_contains(self, w_set, w_value):
        llops = self.llops
        rdict = llops.getfield(w_set, "rdict")
        key = self.dict_key(w_value)
        return llops.is_true(llops.residual_call(ll_dict_contains,
                                                 rdict, key))

    def set_binop(self, symbol, w_a, w_b):
        """Set &, |, ^ and - (via the BytesSetStrategy-style helpers)."""
        llops = self.llops
        rdict_a = llops.getfield(w_a, "rdict")
        rdict_b = llops.getfield(w_b, "rdict")
        fn = {"&": _set_intersect, "|": _set_union,
              "-": _set_difference, "^": _set_symdiff}[symbol]
        pairs = llops.residual_call(fn, rdict_a, rdict_b)
        w_result = self.new_set([])
        rdict = llops.getfield(w_result, "rdict")
        llops.residual_call(_set_fill, rdict, pairs)
        return w_result

    # -- list operations ------------------------------------------------------------------

    def list_storage(self, w_list):
        return self.llops.getfield(w_list, "storage")

    def list_strategy(self, w_list):
        return self.llops.promote(self.llops.getfield(w_list, "strategy"))

    def list_len_raw(self, w_list):
        return self.llops.arraylen(self.list_storage(w_list))

    def list_getitem(self, w_list, index):
        """index: raw machine int (possibly negative)."""
        llops = self.llops
        storage = self.list_storage(w_list)
        length = llops.arraylen(storage)
        index = self.normalize_index(index, length, "list index")
        strategy = self.list_strategy(w_list)
        raw = llops.getarrayitem(storage, index)
        if strategy == STRATEGY_INT:
            return self.wrap_int(raw)
        return raw

    def list_setitem(self, w_list, index, w_value):
        llops = self.llops
        storage = self.list_storage(w_list)
        length = llops.arraylen(storage)
        index = self.normalize_index(index, length, "list index")
        strategy = self.list_strategy(w_list)
        if strategy == STRATEGY_INT:
            if llops.cls_of(w_value) is W_Int:
                llops.setarrayitem(storage, index,
                                   self.int_val(w_value))
                return
            self.list_generalize(w_list)
            storage = self.list_storage(w_list)
        llops.setarrayitem(storage, index, w_value)

    def list_generalize(self, w_list):
        """Switch an int-strategy list to object storage."""
        llops = self.llops
        storage = self.list_storage(w_list)
        llops.residual_call(_generalize_to_object, storage,
                            self._rewrap_int)
        llops.setfield(w_list, "strategy", STRATEGY_OBJECT)

    def _rewrap_int(self, raw):
        # Called from inside the generalize residual: plain wrapping.
        w_value = W_Int(raw)
        w_value._addr = self.ctx.gc.allocate(W_Int._size_, obj=w_value)
        return w_value

    def list_append(self, w_list, w_value):
        llops = self.llops
        strategy = self.list_strategy(w_list)
        if strategy == STRATEGY_INT:
            if llops.cls_of(w_value) is W_Int:
                storage = self.list_storage(w_list)
                llops.residual_call(_storage_append, storage,
                                    self.int_val(w_value))
                return
            self.list_generalize(w_list)
        storage = self.list_storage(w_list)
        llops.residual_call(_storage_append, storage, w_value)

    def list_concat(self, w_a, w_b):
        llops = self.llops
        strat_a = self.list_strategy(w_a)
        strat_b = self.list_strategy(w_b)
        items_a = llops.residual_call(_storage_items, self.list_storage(w_a))
        items_b = llops.residual_call(_storage_items, self.list_storage(w_b))
        if strat_a == strat_b:
            combined = llops.residual_call(_list_concat_raw, items_a, items_b)
            storage = llops.residual_call(_storage_from, combined)
            return llops.new(W_List, strategy=strat_a, storage=storage)
        # Mixed strategies: generalize both to objects.
        w_result = self.new_list([])
        for w_src in (w_a, w_b):
            length = llops.promote(self.list_len_raw(w_src))
            for i in range(length):
                self.list_append(w_result, self.list_getitem(w_src, i))
        return w_result

    def list_repeat(self, w_list, w_count):
        llops = self.llops
        count = self.int_val(w_count)
        strategy = self.list_strategy(w_list)
        items = llops.residual_call(_storage_items, self.list_storage(w_list))
        repeated = llops.residual_call(rlist.ll_mul, items, count)
        storage = llops.residual_call(_storage_from, repeated)
        return llops.new(W_List, strategy=strategy, storage=storage)

    def list_slice(self, w_list, start, stop):
        llops = self.llops
        strategy = self.list_strategy(w_list)
        items = llops.residual_call(_storage_items, self.list_storage(w_list))
        part = llops.residual_call(rlist.ll_getslice, items, start, stop)
        storage = llops.residual_call(_storage_from, part)
        return llops.new(W_List, strategy=strategy, storage=storage)

    def list_eq(self, w_a, w_b):
        llops = self.llops
        len_a = self.list_len_raw(w_a)
        len_b = self.list_len_raw(w_b)
        if not llops.is_true(llops.int_eq(len_a, len_b)):
            return False
        length = llops.promote(len_a)
        for i in range(length):
            if not self.eq_w(self.list_getitem(w_a, i),
                             self.list_getitem(w_b, i)):
                return False
        return True

    def list_compare(self, opname, w_a, w_b):
        sign = self._seq_cmp_sign(
            w_a, w_b, self.list_len_raw, self.list_getitem)
        return self._cmp_from_sign(opname, sign)

    def tuple_compare(self, opname, w_a, w_b):
        sign = self._seq_cmp_sign(
            w_a, w_b, self.tuple_len_raw, self.tuple_getitem_raw)
        return self._cmp_from_sign(opname, sign)

    def _seq_cmp_sign(self, w_a, w_b, len_fn, get_fn):
        llops = self.llops
        len_a = llops.promote(len_fn(w_a))
        len_b = llops.promote(len_fn(w_b))
        for i in range(min(len_a, len_b)):
            w_x = get_fn(w_a, i)
            w_y = get_fn(w_b, i)
            if not self.eq_w(w_x, w_y):
                less = self.compare("lt", w_x, w_y)
                return -1 if self.is_true_w(less) else 1
        if len_a < len_b:
            return -1
        if len_a > len_b:
            return 1
        return 0

    # -- tuples ----------------------------------------------------------------------------

    def tuple_len_raw(self, w_tuple):
        return self.llops.arraylen(self.llops.getfield(w_tuple, "items"))

    def tuple_getitem_raw(self, w_tuple, index):
        items = self.llops.getfield(w_tuple, "items")
        return self.llops.getarrayitem(items, index)

    def tuple_getitem(self, w_tuple, index):
        llops = self.llops
        items = llops.getfield(w_tuple, "items")
        length = llops.arraylen(items)
        index = self.normalize_index(index, length, "tuple index")
        return llops.getarrayitem(items, index)

    def tuple_eq(self, w_a, w_b):
        llops = self.llops
        len_a = self.tuple_len_raw(w_a)
        len_b = self.tuple_len_raw(w_b)
        if not llops.is_true(llops.int_eq(len_a, len_b)):
            return False
        length = llops.promote(len_a)
        for i in range(length):
            if not self.eq_w(self.tuple_getitem_raw(w_a, i),
                             self.tuple_getitem_raw(w_b, i)):
                return False
        return True

    def tuple_concat(self, w_a, w_b):
        llops = self.llops
        items_a = llops.getfield(w_a, "items")
        items_b = llops.getfield(w_b, "items")
        raw_a = llops.residual_call(_storage_items, items_a)
        raw_b = llops.residual_call(_storage_items, items_b)
        combined = llops.residual_call(_list_concat_raw, raw_a, raw_b)
        items = llops.residual_call(_storage_from, combined)
        return llops.new(W_Tuple, items=items)

    # -- shared index handling -----------------------------------------------------------------

    def normalize_index(self, index, length, what):
        llops = self.llops
        negative = llops.int_lt(index, 0)
        if llops.is_true(negative):
            index = llops.int_add(index, length)
        bad_low = llops.int_lt(index, 0)
        bad_high = llops.int_ge(index, length)
        if llops.is_true(bad_low) or llops.is_true(bad_high):
            raise GuestError("%s out of range" % what)
        return index

    # -- subscripts ------------------------------------------------------------------------------

    def getitem(self, w_obj, w_index):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        cls_index = llops.cls_of(w_index)
        if cls_index is W_Slice:
            return self.getslice(w_obj, cls, w_index)
        if cls is W_List:
            return self.list_getitem(w_obj, self._index_val(w_index,
                                                            cls_index))
        if cls is W_Dict:
            return self.dict_getitem(w_obj, w_index)
        if cls is W_Str:
            text = self.str_val(w_obj)
            length = llops.unicodelen(text)
            index = self.normalize_index(
                self._index_val(w_index, cls_index), length, "string index")
            return self.wrap_str(llops.unicodegetitem(text, index))
        if cls is W_Tuple:
            return self.tuple_getitem(w_obj, self._index_val(w_index,
                                                             cls_index))
        raise GuestError("object is not subscriptable")

    def _index_val(self, w_index, cls_index):
        if not is_intish(cls_index):
            raise GuestError("indices must be integers")
        return self.int_val(w_index)

    def getslice(self, w_obj, cls, w_slice):
        llops = self.llops
        w_start = llops.getfield(w_slice, "w_start")
        w_stop = llops.getfield(w_slice, "w_stop")
        if cls is W_List:
            length = self.list_len_raw(w_list=w_obj)
        elif cls is W_Str:
            length = llops.unicodelen(self.str_val(w_obj))
        elif cls is W_Tuple:
            length = self.tuple_len_raw(w_obj)
        else:
            raise GuestError("object is not sliceable")
        start = self._slice_bound(w_start, 0, length)
        stop = self._slice_bound(w_stop, length, length)
        if cls is W_List:
            return self.list_slice(w_obj, start, stop)
        if cls is W_Str:
            return self.wrap_str(llops.residual_call(
                rstr.ll_slice, self.str_val(w_obj), start, stop))
        items = llops.getfield(w_obj, "items")
        raw = llops.residual_call(_storage_items, items)
        part = llops.residual_call(rlist.ll_getslice, raw, start, stop)
        new_items = llops.residual_call(_storage_from, part)
        return llops.new(W_Tuple, items=new_items)

    def _slice_bound(self, w_bound, default, length):
        llops = self.llops
        if llops.is_null(w_bound) or \
                llops.cls_of(w_bound) is W_None:
            return default
        value = self.int_val(w_bound)
        negative = llops.int_lt(value, 0)
        if llops.is_true(negative):
            value = llops.int_add(value, length)
            clipped_low = llops.int_lt(value, 0)
            if llops.is_true(clipped_low):
                value = 0
        high = llops.int_gt(value, length)
        if llops.is_true(high):
            value = length
        return value

    def setitem(self, w_obj, w_index, w_value):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_List:
            cls_index = llops.cls_of(w_index)
            self.list_setitem(w_obj, self._index_val(w_index, cls_index),
                              w_value)
            return
        if cls is W_Dict:
            self.dict_setitem(w_obj, w_index, w_value)
            return
        raise GuestError("object does not support item assignment")

    def delitem(self, w_obj, w_index):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_Dict:
            self.dict_delitem(w_obj, w_index)
            return
        if cls is W_List:
            cls_index = llops.cls_of(w_index)
            index = self.normalize_index(
                self._index_val(w_index, cls_index),
                self.list_len_raw(w_obj), "list index")
            storage = self.list_storage(w_obj)
            llops.residual_call(_storage_pop, storage, index)
            return
        raise GuestError("object does not support item deletion")

    # -- membership ---------------------------------------------------------------------------------

    def contains(self, w_item, w_container):
        llops = self.llops
        cls = llops.cls_of(w_container)
        if cls is W_Dict:
            return self.dict_contains(w_container, w_item)
        if cls is W_Set:
            return self.set_contains(w_container, w_item)
        if cls is W_Str:
            return llops.is_true(llops.residual_call(
                rstr.ll_contains, self.str_val(w_container),
                self.str_val(w_item)))
        if cls is W_List:
            length = llops.promote(self.list_len_raw(w_container))
            for i in range(length):
                if self.eq_w(w_item, self.list_getitem(w_container, i)):
                    return True
            return False
        if cls is W_Tuple:
            length = llops.promote(self.tuple_len_raw(w_container))
            for i in range(length):
                if self.eq_w(w_item, self.tuple_getitem_raw(w_container, i)):
                    return True
            return False
        if cls is W_Range:
            value = self.int_val(w_item)
            start = llops.getfield(w_container, "start")
            stop = llops.getfield(w_container, "stop")
            inside = llops.is_true(llops.int_ge(value, start)) and \
                llops.is_true(llops.int_lt(value, stop))
            return inside
        raise GuestError("argument of type %r is not iterable"
                         % cls.__name__)

    # -- iteration --------------------------------------------------------------------------------------

    def get_iter(self, w_obj):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_List:
            return llops.new(W_ListIter, w_list=w_obj, index=0)
        if cls is W_Range:
            return llops.new(
                W_RangeIter,
                current=llops.getfield(w_obj, "start"),
                stop=llops.getfield(w_obj, "stop"),
                step=llops.getfield(w_obj, "step"),
            )
        if cls is W_Tuple:
            return llops.new(W_TupleIter, w_tuple=w_obj, index=0)
        if cls is W_Str:
            return llops.new(W_StrIter, w_str=w_obj, index=0)
        if cls is W_Dict:
            rdict = llops.getfield(w_obj, "rdict")
            pairs = llops.residual_call(ll_dict_values, rdict)
            return llops.new(W_DictIter, items=pairs, index=0, mode="keys")
        if cls is W_Set:
            rdict = llops.getfield(w_obj, "rdict")
            pairs = llops.residual_call(ll_dict_values, rdict)
            return llops.new(W_DictIter, items=pairs, index=0, mode="keys")
        if cls in (W_ListIter, W_RangeIter, W_TupleIter, W_StrIter,
                   W_DictIter):
            return w_obj
        raise GuestError("object is not iterable")

    def iter_next(self, w_iter):
        """Next value or None (exhausted). Guards record the exit path."""
        llops = self.llops
        cls = llops.cls_of(w_iter)
        if cls is W_RangeIter:
            current = llops.getfield(w_iter, "current")
            stop = llops.getfield(w_iter, "stop")
            step = llops.getfield(w_iter, "step")
            step_positive = llops.is_true(llops.int_gt(step, 0))
            if step_positive:
                in_range = llops.is_true(llops.int_lt(current, stop))
            else:
                in_range = llops.is_true(llops.int_gt(current, stop))
            if not in_range:
                return None
            llops.setfield(w_iter, "current", llops.int_add(current, step))
            return self.wrap_int(current)
        if cls is W_ListIter:
            w_list = llops.getfield(w_iter, "w_list")
            index = llops.getfield(w_iter, "index")
            length = self.list_len_raw(w_list)
            has_more = llops.is_true(llops.int_lt(index, length))
            if not has_more:
                return None
            llops.setfield(w_iter, "index", llops.int_add(index, 1))
            return self.list_getitem(w_list, index)
        if cls is W_TupleIter:
            w_tuple = llops.getfield(w_iter, "w_tuple")
            index = llops.getfield(w_iter, "index")
            length = self.tuple_len_raw(w_tuple)
            if not llops.is_true(llops.int_lt(index, length)):
                return None
            llops.setfield(w_iter, "index", llops.int_add(index, 1))
            return self.tuple_getitem_raw(w_tuple, index)
        if cls is W_StrIter:
            w_str = llops.getfield(w_iter, "w_str")
            index = llops.getfield(w_iter, "index")
            text = self.str_val(w_str)
            length = llops.unicodelen(text)
            if not llops.is_true(llops.int_lt(index, length)):
                return None
            llops.setfield(w_iter, "index", llops.int_add(index, 1))
            return self.wrap_str(llops.unicodegetitem(text, index))
        if cls is W_DictIter:
            items = llops.getfield(w_iter, "items")
            index = llops.getfield(w_iter, "index")
            length = llops.residual_call(_raw_len, items)
            if not llops.is_true(llops.int_lt(index, length)):
                return None
            llops.setfield(w_iter, "index", llops.int_add(index, 1))
            pair = llops.residual_call(_raw_getitem, items, index)
            mode = llops.promote(llops.getfield(w_iter, "mode"))
            if mode == "keys":
                return self.pair_key(pair)
            if mode == "values":
                return self.pair_value(pair)
            return self.new_tuple([self.pair_key(pair),
                                   self.pair_value(pair)])
        raise GuestError("not an iterator")


# -- raw-structure residual helpers ---------------------------------------------------


@aot("rlist.ll_len", "R", "readonly")
def _raw_len(ctx, items):
    ctx.charge(insns.mix(load=1))
    return len(items)


@aot("rlist.ll_getitem_raw", "R", "readonly")
def _raw_getitem(ctx, items, index):
    ctx.charge(insns.mix(load=2, alu=1))
    return items[index]


@aot("rlist.ll_newlist", "R", "pure")
def _list_concat_raw(ctx, a, b):
    charge_loop(ctx, max(1, len(a) + len(b)), insns.mix(load=1, store=1))
    return a + b


@aot("rlist.ll_items", "R", "readonly")
def _storage_items(ctx, storage):
    ctx.charge(insns.mix(load=1))
    return storage.items


@aot("rlist.ll_storage_from", "R", "pure")
def _storage_from(ctx, items):
    from repro.interp.objects import LLArray

    ctx.charge(insns.mix(alu=3, store=2))
    arr = LLArray(items)
    arr._addr = ctx.gc.allocate(16 + 8 * len(items), obj=arr)
    return arr


@aot("rlist.ll_storage_append", "R", "any")
def _storage_append(ctx, storage, value):
    n = len(storage.items)
    if n and (n & (n - 1)) == 0:
        charge_loop(ctx, n, insns.mix(load=1, store=1, alu=1))
    ctx.charge(insns.mix(store=1, alu=2, load=1))
    storage.items.append(value)
    return None


@aot("rordereddict.ll_newdict", "R", "any")
def _new_rdict(ctx):
    ctx.charge(insns.mix(alu=6, store=4, load=2))
    rdict = RDict()
    rdict._addr = ctx.gc.allocate(RDict._size_, obj=rdict)
    return rdict


@aot("rordereddict.ll_dict_setitem", "R", "idempotent")
def _dict_setitem_pair(ctx, rdict, key, w_key, w_value):
    from repro.rlib.rordereddict import ll_dict_setitem

    return ll_dict_setitem.fn(ctx, rdict, key, (w_key, w_value))


@aot("W_TupleObject.dict_key", "I", "pure")
def _tuple_dict_key(ctx, w_tuple):
    """Raw hashable key for a tuple of primitives (recursive)."""
    from repro.pylang.objects import (
        W_Float as _F, W_Int as _I, W_None as _N, W_Str as _S,
        W_Tuple as _T,
    )

    items = w_tuple.items.items
    charge_loop(ctx, max(1, len(items)), insns.mix(load=2, alu=3))
    parts = []
    for w_item in items:
        if isinstance(w_item, _I):
            parts.append(w_item.intval)
        elif isinstance(w_item, _S):
            parts.append(w_item.strval)
        elif isinstance(w_item, _F):
            parts.append(w_item.floatval)
        elif isinstance(w_item, _N):
            parts.append(None)
        elif isinstance(w_item, _T):
            parts.append(_tuple_dict_key.fn(ctx, w_item))
        else:
            parts.append(w_item)
    return tuple(parts)


@aot("rlist.ll_pair_first", "R", "readonly")
def _pair_first(ctx, pair):
    ctx.charge(insns.mix(load=1))
    return pair[0]


@aot("rlist.ll_pair_second", "R", "readonly")
def _pair_second(ctx, pair):
    ctx.charge(insns.mix(load=1))
    return pair[1]


@aot("rordereddict.ll_dict_getvalue", "R", "readonly")
def _dict_getvalue(ctx, rdict, key):
    """Lookup returning the stored w_value directly (or None)."""
    from repro.rlib.rordereddict import ll_dict_lookup

    pair = ll_dict_lookup.fn(ctx, rdict, key)
    if pair is None:
        return None
    return pair[1]


# Set operations work on raw entry triples (hash, rawkey, (w_key, w_val)).


@aot("BytesSetStrategy.intersect", "I", "pure")
def _set_intersect(ctx, a, b):
    charge_loop(ctx, max(1, len(a.entries)), insns.mix(load=3, alu=4))
    keys_b = {e[1] for e in b.entries if e}
    return [(e[1], e[2]) for e in a.entries if e and e[1] in keys_b]


@aot("BytesSetStrategy.union", "I", "pure")
def _set_union(ctx, a, b):
    charge_loop(ctx, max(1, len(a.entries) + len(b.entries)),
                insns.mix(load=3, alu=4, store=1))
    result = [(e[1], e[2]) for e in a.entries if e]
    keys_a = {e[1] for e in a.entries if e}
    result.extend((e[1], e[2]) for e in b.entries
                  if e and e[1] not in keys_a)
    return result


@aot("BytesSetStrategy.difference_unwrapped", "I", "pure")
def _set_difference(ctx, a, b):
    charge_loop(ctx, max(1, len(a.entries)), insns.mix(load=3, alu=4))
    keys_b = {e[1] for e in b.entries if e}
    return [(e[1], e[2]) for e in a.entries if e and e[1] not in keys_b]


@aot("BytesSetStrategy.symmetric_difference", "I", "pure")
def _set_symdiff(ctx, a, b):
    charge_loop(ctx, max(1, len(a.entries) + len(b.entries)),
                insns.mix(load=3, alu=4))
    keys_a = {e[1] for e in a.entries if e}
    keys_b = {e[1] for e in b.entries if e}
    result = [(e[1], e[2]) for e in a.entries if e and e[1] not in keys_b]
    result.extend((e[1], e[2]) for e in b.entries
                  if e and e[1] not in keys_a)
    return result


@aot("BytesSetStrategy.fill", "I", "any")
def _set_fill(ctx, rdict, entries):
    from repro.rlib.rordereddict import ll_dict_setitem

    for raw_key, pair in entries:
        ll_dict_setitem.fn(ctx, rdict, raw_key, pair)
    return None
