# hexiom2: constraint-puzzle solver (simplified): place numbered tiles
# on a small hex-ish board so each tile's number equals its occupied
# neighbour count. Branchy depth-first search with undo — the paper
# notes it as slow-warming with many traces.
N = 4


def build_neighbours(size):
    # A size x size grid with hex-like 6-neighbourhood.
    neighbours = []
    for y in range(size):
        for x in range(size):
            cell = []
            offsets = [(-1, 0), (1, 0), (0, -1), (0, 1), (1, -1), (-1, 1)]
            for d in offsets:
                nx = x + d[0]
                ny = y + d[1]
                if nx >= 0 and nx < size and ny >= 0 and ny < size:
                    cell.append(ny * size + nx)
            neighbours.append(cell)
    return neighbours


def occupied_neighbours(board, neighbours, pos):
    count = 0
    for n in neighbours[pos]:
        if board[n] >= 0:
            count += 1
    return count


def consistent(board, neighbours, pos):
    # A placed tile is violated only when all its neighbours are
    # decided and the count mismatches.
    value = board[pos]
    if value < 0:
        return True
    undecided = 0
    count = 0
    for n in neighbours[pos]:
        if board[n] == -2:
            undecided += 1
        elif board[n] >= 0:
            count += 1
    if undecided == 0:
        return count == value
    return count <= value and value <= count + undecided


def solve(board, neighbours, tiles, index, stats):
    stats[0] += 1
    if index == len(tiles):
        stats[1] += 1
        return
    value = tiles[index]
    for pos in range(len(board)):
        if board[pos] != -2:
            continue
        board[pos] = value
        ok = consistent(board, neighbours, pos)
        if ok:
            for n in neighbours[pos]:
                if not consistent(board, neighbours, n):
                    ok = False
                    break
        if ok:
            solve(board, neighbours, tiles, index + 1, stats)
        board[pos] = -2
        if stats[1] >= 20:
            return


def run_hexiom(size):
    neighbours = build_neighbours(size)
    board = [-2] * (size * size)
    # Deterministic tile multiset.
    tiles = []
    seed = 11
    for i in range(6):
        seed = (seed * 1103515245 + 12345) % 2147483648
        tiles.append(seed % 4)
    tiles.sort()
    stats = [0, 0]
    solve(board, neighbours, tiles, 0, stats)
    print("hexiom", stats[0], stats[1])


run_hexiom(N)
