"""The shrinker's contract: minimal reproducers out of big programs."""

import pytest

from repro.difftest.generator import generate_program
from repro.difftest.shrinker import shrink
from repro.pylang.compiler import compile_source


class TestBasics:
    def test_rejects_uninteresting_input(self):
        with pytest.raises(ValueError):
            shrink("x = 1\n", lambda s: False)

    def test_result_still_interesting(self):
        source = "a = 1\nb = 2\nc = a + b\nprint(c)\n"
        result = shrink(source, lambda s: "print" in s)
        assert "print" in result

    def test_removes_irrelevant_statements(self):
        source = "a = 1\nb = 2\nc = 3\nprint(9)\n"
        result = shrink(source, lambda s: "print(9)" in s)
        assert result == "print(9)\n"

    def test_hoists_compounds(self):
        source = ("for i in range(5):\n"
                  "    x = 1\n"
                  "    marker = 7\n")
        result = shrink(source, lambda s: "marker" in s)
        assert result == "marker = 7\n"

    def test_reduces_constants(self):
        result = shrink("x = 99999\n", lambda s: s.startswith("x ="))
        assert result in ("x = 0\n", "x = 1\n")

    def test_predicate_exceptions_mean_uninteresting(self):
        calls = []

        def fussy(source):
            calls.append(source)
            if len(calls) == 1:
                return True  # accept the initial program
            raise RuntimeError("candidate crashed the harness")

        source = "a = 1\nb = 2\n"
        # Every candidate "crashes"; the shrinker must survive and
        # return the original rather than propagate.
        assert shrink(source, fussy) == source

    def test_deterministic(self):
        source = generate_program(77)
        pred = lambda s: "print" in s
        assert shrink(source, pred) == shrink(source, pred)


class TestInjectedBugReduction:
    """The acceptance-criteria scenario: a synthetic engine bug planted
    in a large generated program must shrink to <= 10 lines."""

    def _buggy_engine_output(self, source):
        """A deliberately broken 'engine': it miscompiles integer `%`
        by adding 1 to every modulo result at the host level."""
        import ast

        class BreakMod(ast.NodeTransformer):
            def visit_BinOp(self, node):
                self.generic_visit(node)
                if isinstance(node.op, ast.Mod):
                    return ast.BinOp(
                        ast.BinOp(node.left, ast.Mod(), node.right),
                        ast.Add(), ast.Constant(1))
                return node

        tree = BreakMod().visit(ast.parse(source))
        ast.fix_missing_locations(tree)
        return ast.unparse(tree)

    def test_shrinks_injected_bug_to_small_reproducer(self):
        from repro.difftest.oracle import run_cpref

        # A large generated program that uses `%` somewhere (the hot
        # loop always does: h = (h * 3 + i) % K).
        source = generate_program(31)
        assert "%" in source
        assert len(source.splitlines()) > 20

        def diverges(candidate):
            healthy = run_cpref(candidate)
            if healthy.error or healthy.truncated:
                return False
            buggy = run_cpref(self._buggy_engine_output(candidate))
            if buggy.truncated:
                return False
            return buggy.output != healthy.output

        assert diverges(source)
        reduced = shrink(source, diverges)
        assert diverges(reduced)
        assert len(reduced.splitlines()) <= 10, reduced
        # The reproducer is still a valid TinyPy program.
        compile_source(reduced)
