# revcomp (CLBG): reverse-complement of DNA sequences — per-character
# table translation (Table III: W_UnicodeObject.descr_translate shape).
N = 20000

COMPLEMENT = {
    "A": "T", "C": "G", "G": "C", "T": "A",
    "a": "T", "c": "G", "g": "C", "t": "A",
    "N": "N", "n": "N",
}


def make_sequence(n):
    seed = 7
    bases = "ACGTacgtNn"
    parts = []
    for i in range(n):
        seed = (seed * 1103515245 + 12345) % 2147483648
        parts.append(bases[seed % 10])
    return "".join(parts)


def reverse_complement(seq):
    out = []
    i = len(seq) - 1
    while i >= 0:
        out.append(COMPLEMENT[seq[i]])
        i -= 1
    return "".join(out)


def run_revcomp(n):
    seq = make_sequence(n)
    result = reverse_complement(seq)
    checksum = 0
    i = 0
    while i < len(result):
        checksum = (checksum * 31 + ord(result[i])) % 1000000007
        i += 97
    print("revcomp", len(result), checksum)


run_revcomp(N)
