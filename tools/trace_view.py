#!/usr/bin/env python
"""Record, summarize, and diff cross-layer telemetry traces.

Subcommands:

    record     run a benchmark with telemetry enabled; write a Chrome
               trace-event JSON (load it in Perfetto / chrome://tracing)
               and/or a compact JSONL event stream, then print the
               per-phase self-time summary cross-checked against the
               PinTool phase windows.
    summarize  print self-time and metrics summaries for a saved JSONL
               stream.
    diff       compare two saved JSONL streams and report self-time
               regressions beyond a tolerance.

Examples (from the repo root):

    PYTHONPATH=src python tools/trace_view.py record --prog richards \
        -o richards.trace.json
    PYTHONPATH=src python tools/trace_view.py record --prog richards \
        --jsonl richards.jsonl
    PYTHONPATH=src python tools/trace_view.py summarize richards.jsonl
    PYTHONPATH=src python tools/trace_view.py diff before.jsonl after.jsonl
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import telemetry  # noqa: E402
from repro.telemetry import export  # noqa: E402


def _record_events(args):
    # Recording is a measurement run: never serve or pollute the store.
    os.environ["REPRO_STORE"] = "0"
    telemetry.enable()
    from repro.benchprogs import registry
    from repro.harness.runner import merged_timeline, run_program

    if args.language == "racket":
        program = registry.rkt_program(args.prog)
    else:
        program = registry.py_program(args.prog)
    n = args.n
    if n is None:
        n = program.small_n if args.quick else program.default_n
    results = [run_program(program, vm, n=n, language=args.language)
               for vm in args.vm]
    telemetry.BUS.finish()
    return merged_timeline(results)


def _check_phase_agreement(events, out=sys.stdout):
    """Cross-check span self-times against the PinTool phase windows.

    Both are driven by the same annotation tags at the same machine
    cycles, so the per-phase self-time sums must match the windowed
    totals (up to float accumulation noise).  Returns True on agreement.
    """
    summary = export.self_time_summary(events, by="phase")
    windows = [e for e in events
               if e["type"] == "instant" and e["name"] == "phase_windows"]
    if not windows:
        out.write("no phase_windows instants (reference VM run?)\n")
        return True
    totals = {}
    for record in windows:
        for phase, counters in record["args"].items():
            totals[phase] = totals.get(phase, 0.0) + counters["cycles"]
    ok = True
    for phase, data in sorted(summary.items()):
        expected = totals.get(phase, 0.0)
        limit = max(1.0, 1e-6 * max(abs(expected), abs(data["self"])))
        agree = abs(data["self"] - expected) <= limit
        ok = ok and agree
        out.write("%-10s self=%16.1f  window=%16.1f  %s\n" % (
            phase, data["self"], expected, "ok" if agree else "MISMATCH"))
    return ok


def cmd_record(args):
    events = _record_events(args)
    if args.jsonl:
        export.write_jsonl(args.jsonl, events)
        print("wrote %s (%d events)" % (args.jsonl, len(events)))
    if args.output:
        export.write_chrome(args.output, events)
        print("wrote %s (load in https://ui.perfetto.dev or "
              "chrome://tracing)" % args.output)
    print()
    print(export.render_summary(export.self_time_summary(events, by="name"),
                                title="Self time by span"))
    print()
    print(export.render_summary(export.self_time_summary(events, by="phase"),
                                title="Self time by phase"))
    print()
    print("Phase agreement (span self-time vs pintool windows):")
    if not _check_phase_agreement(events):
        print("PHASE MISMATCH", file=sys.stderr)
        return 1
    return 0


def cmd_summarize(args):
    events = export.read_jsonl(args.trace)
    print(export.render_summary(export.self_time_summary(events, by="name"),
                                title="Self time by span"))
    print()
    print(export.render_summary(export.self_time_summary(events, by="phase"),
                                title="Self time by phase"))
    metrics = export.merged_metrics(events)
    counters = metrics.get("counters", {})
    if counters:
        print()
        print("Counters:")
        for name in sorted(counters):
            print("  %-40s %s" % (name, counters[name]))
    return 0


def cmd_diff(args):
    before = export.self_time_summary(export.read_jsonl(args.before))
    after = export.self_time_summary(export.read_jsonl(args.after))
    rows = export.diff_summaries(before, after, tolerance=args.tolerance)
    if not rows:
        print("no self-time changes beyond %.0f%% tolerance"
              % (100.0 * args.tolerance))
        return 0
    print("%-24s %16s %16s %8s" % ("span", "before", "after", "delta"))
    for row in rows:
        print("%-24s %16.1f %16.1f %+7.1f%%" % (
            row["name"], row["before"], row["after"], 100.0 * row["ratio"]))
    return 1 if args.fail_on_change else 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="trace_view.py",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a benchmark with telemetry on")
    rec.add_argument("--prog", required=True, help="benchmark name")
    rec.add_argument("--vm", action="append", default=None,
                     help="VM kind (repeatable; default: pypy)")
    rec.add_argument("--language", default="python",
                     choices=["python", "racket"])
    rec.add_argument("--n", type=int, default=None, help="problem size")
    rec.add_argument("--quick", action="store_true",
                     help="use the benchmark's quick (test) size")
    rec.add_argument("-o", "--output", default=None,
                     help="Chrome trace-event JSON output path")
    rec.add_argument("--jsonl", default=None,
                     help="compact JSONL event-stream output path")
    rec.set_defaults(func=cmd_record)

    summ = sub.add_parser("summarize", help="summarize a saved JSONL trace")
    summ.add_argument("trace", help="JSONL stream from record --jsonl")
    summ.set_defaults(func=cmd_summarize)

    dif = sub.add_parser("diff", help="compare two saved JSONL traces")
    dif.add_argument("before")
    dif.add_argument("after")
    dif.add_argument("--tolerance", type=float, default=0.05,
                     help="relative self-time change to report (default 5%%)")
    dif.add_argument("--fail-on-change", action="store_true",
                     help="exit non-zero when changes are reported")
    dif.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    if args.command == "record":
        if args.vm is None:
            args.vm = ["pypy"]
        if not args.output and not args.jsonl:
            args.output = "%s.trace.json" % args.prog
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
