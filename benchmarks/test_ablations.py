"""Ablation benches: optimizer passes, thresholds, predictors.

These go beyond the paper's measurements: they test its *attributions*
(escape analysis reduces allocation work, warmup thresholds trade
tracing overhead against interpretation, branch predictors matter less
than folklore says) by switching each mechanism off.
"""

from conftest import save

from repro.harness import ablations


def test_optimizer_ablation(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: ablations.optimizer_ablation(quick=quick),
        rounds=1, iterations=1)
    save("ablation_optimizer.txt", text)

    # Virtuals (escape analysis) are the JIT's most valuable pass on
    # allocation-heavy benchmarks.
    assert any(r["opt_virtuals"] > 1.1 for r in rows)
    # Turning everything off always costs something.
    assert all(r["all_off"] >= 1.0 for r in rows)
    assert any(r["all_off"] > 1.3 for r in rows)


def test_threshold_sweep(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: ablations.threshold_sweep(quick=quick),
        rounds=1, iterations=1)
    save("ablation_threshold.txt", text)

    # An absurdly high threshold leaves less time in JIT code.
    jit_fractions = {t: j for t, _s, j, _tr in rows}
    lowest = min(jit_fractions)
    highest = max(jit_fractions)
    assert jit_fractions[lowest] >= jit_fractions[highest]


def test_bridge_threshold_sweep(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: ablations.bridge_threshold_sweep(quick=quick),
        rounds=1, iterations=1)
    save("ablation_bridge_threshold.txt", text)

    bridges = {t: b for t, _s, b, _bh in rows}
    # Eager bridging compiles at least as many bridges as lazy bridging.
    assert bridges[min(bridges)] >= bridges[max(bridges)]


def test_predictor_ablation(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: ablations.predictor_ablation(quick=quick),
        rounds=1, iterations=1)
    save("ablation_predictor.txt", text)

    # A real predictor beats always-taken for the interpreter, but the
    # gap is bounded (Rohou et al.: mispredictions are no longer the
    # dominant interpreter cost on modern predictors).
    by_key = {(b, vm, p): s for b, vm, p, s, _m in rows}
    for (bench, vm, predictor), seconds in list(by_key.items()):
        if predictor != "gshare":
            continue
        degraded = by_key[(bench, vm, "always_taken")]
        assert degraded >= seconds * 0.98
        assert degraded < seconds * 2.0
