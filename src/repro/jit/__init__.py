"""The meta-tracing JIT: IR, tracer, optimizer, backend, executor."""
