# fannkuchredux (CLBG): pancake-flipping over permutations; heavy
# int-list slicing and reversal (Table III: IntegerListStrategy setslice).
N = 7


def fannkuch(n):
    perm1 = []
    for i in range(n):
        perm1.append(i)
    count = [0] * n
    max_flips = 0
    checksum = 0
    r = n
    sign = 1
    while True:
        if r != 1:
            for i in range(1, r):
                count[i] = i
            r = 1
        if perm1[0] != 0:
            perm = perm1[0:n]
            flips = 0
            k = perm[0]
            while k != 0:
                # reverse perm[0..k]
                lo = 0
                hi = k
                while lo < hi:
                    t = perm[lo]
                    perm[lo] = perm[hi]
                    perm[hi] = t
                    lo += 1
                    hi -= 1
                flips += 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            checksum += sign * flips
        sign = 0 - sign
        # next permutation in the count system
        while True:
            if r == n:
                print("fannkuch", checksum, max_flips)
                return
            first = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i += 1
            perm1[r] = first
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1


fannkuch(N)
