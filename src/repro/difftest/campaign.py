"""Fuzz campaign driver: N seeded iterations, serial or parallel.

One *iteration* derives a program from ``base_seed + i``, runs the full
oracle on it, and — if the oracle finds divergences — shrinks the
program to a minimal reproducer that still shows the same divergence
kinds.  Iterations are independent, so the campaign fans out across a
process pool exactly like the PR 1 runner does, with the same
"payloads over IPC" discipline (a Finding is a small picklable record,
never a live VM context).
"""

from concurrent.futures import ProcessPoolExecutor

from repro.difftest.generator import GenConfig, generate_program
from repro.difftest.oracle import check_program
from repro.difftest.shrinker import shrink


class Finding(object):
    """One divergent iteration, shrunken and ready to check in."""

    __slots__ = ("seed", "source", "shrunk", "kinds", "engines",
                 "details")

    def __init__(self, seed, source, shrunk, kinds, engines, details):
        self.seed = seed
        self.source = source
        self.shrunk = shrunk
        self.kinds = tuple(kinds)
        self.engines = tuple(engines)
        self.details = tuple(details)

    def __repr__(self):
        return "<Finding seed=%d kinds=%s>" % (
            self.seed, ",".join(self.kinds))


class CampaignResult(object):
    def __init__(self):
        self.iterations = 0
        self.inconclusive = 0
        self.findings = []

    @property
    def ok(self):
        return not self.findings


def _divergence_signature(report):
    return (frozenset(d.kind for d in report.divergences),
            frozenset(e for d in report.divergences for e in d.engines))


def run_iteration(seed, gen_config=None, thresholds=None,
                  shrink_failures=True, max_shrink_tests=600):
    """Run one fuzz iteration; returns (status, finding_or_none).

    status is one of ``"ok"``, ``"inconclusive"``, ``"divergent"``.
    """
    config = gen_config or GenConfig()
    source = generate_program(seed, config)
    kwargs = {}
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    try:
        report = check_program(source, **kwargs)
    except Exception as exc:
        # A host-level crash inside an engine is itself a finding (the
        # guest program must never take a VM down), and it must not
        # abort the rest of the campaign.
        import traceback

        details = [traceback.format_exc(limit=8), repr(exc)]
        shrunk = source
        if shrink_failures:
            exc_repr = repr(exc)

            def crashes_same(candidate):
                try:
                    check_program(candidate, **kwargs)
                except Exception as cand_exc:
                    return repr(cand_exc) == exc_repr
                return False

            try:
                shrunk = shrink(source, crashes_same,
                                max_tests=max_shrink_tests)
            except ValueError:
                pass
        finding = Finding(seed, source, shrunk, ["crash"], [], details)
        return "divergent", finding
    if report.inconclusive:
        return "inconclusive", None
    if report.ok:
        return "ok", None
    kinds, engines = _divergence_signature(report)
    shrunk = source
    if shrink_failures:
        def interesting(candidate):
            cand_report = check_program(candidate, **kwargs)
            if cand_report.inconclusive or cand_report.ok:
                return False
            cand_kinds, _ = _divergence_signature(cand_report)
            return cand_kinds == kinds

        shrunk = shrink(source, interesting,
                        max_tests=max_shrink_tests)
    finding = Finding(
        seed, source, shrunk, sorted(kinds), sorted(engines),
        [d.detail for d in report.divergences])
    return "divergent", finding


def _iteration_job(spec):
    seed, config_kwargs, thresholds, do_shrink = spec
    status, finding = run_iteration(
        seed, gen_config=GenConfig(**config_kwargs),
        thresholds=thresholds, shrink_failures=do_shrink)
    return status, finding


def run_campaign(iters, base_seed, gen_config=None, thresholds=None,
                 workers=1, shrink_failures=True, progress=None):
    """Run ``iters`` seeded iterations; returns a CampaignResult.

    ``progress``, if given, is called after each iteration with
    ``(seed, status)`` — the CLI uses it for live reporting.
    """
    config = gen_config or GenConfig()
    result = CampaignResult()
    seeds = [base_seed + i for i in range(iters)]
    if workers <= 1 or iters <= 1:
        outcomes = (
            run_iteration(seed, gen_config=config,
                          thresholds=thresholds,
                          shrink_failures=shrink_failures)
            for seed in seeds)
        pairs = zip(seeds, outcomes)
    else:
        specs = [(seed, config.as_kwargs(), thresholds, shrink_failures)
                 for seed in seeds]
        pool = ProcessPoolExecutor(max_workers=min(workers, iters))
        pairs = zip(seeds, pool.map(_iteration_job, specs))
    for seed, (status, finding) in pairs:
        result.iterations += 1
        if status == "inconclusive":
            result.inconclusive += 1
        elif status == "divergent":
            result.findings.append(finding)
        if progress is not None:
            progress(seed, status)
    if workers > 1 and iters > 1:
        pool.shutdown()
    return result
