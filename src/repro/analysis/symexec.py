"""Symbolic execution domain for translation validation (DESIGN.md §16).

Runs an IR op stream — recorded *or* optimized, the grammar is the
same — over a small symbolic-value domain and reduces it to the things
a trace optimizer is *not* allowed to change:

* an ordered list of **observable entries**: residual calls, heap and
  array stores, allocations that escape, merge points, guards and the
  loop-closing jump, each carrying symbolic operand terms;
* a **symbolic heap** with version facts (field reads havoc a fresh
  term keyed by the store/call epoch, so two streams agree on a read
  exactly when the writes they both performed agree);
* **virtual-object environments**: every ``new_with_vtable`` starts
  life as an unescaped :class:`SymObj` whose stores stay silent until
  the object escapes (call argument, store into an escaped object,
  jump).  At the escape point the evaluator synthesizes the allocation
  and its field stores in canonical (descr offset) order — the same
  normal form the optimizer's ``force`` produces — so allocation
  sinking cancels out between the two streams;
* **guard-condition facts**: guards constify their subject exactly as
  the optimizer's ``VInfo.const`` does, so downstream terms on the two
  sides canonicalize identically.

Constant folding mirrors :data:`repro.jit.semantics.FOLDABLE` and is
applied uniformly to both streams, which makes the comparison
insensitive to whether the optimizer actually folded (a residual op on
constants evaluates to the same constant here).

The comparison itself —the entry walk, guard entailment and the term
:class:`Unifier` — lives in :mod:`repro.analysis.transval`.
"""

from repro.jit import ir
from repro.jit.resume import VirtualSpec
from repro.jit.semantics import EVAL, FOLDABLE


class SymConst(object):
    """A compile-time constant (wraps the host value)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class SymVar(object):
    """A free input: a trace/label input argument."""

    __slots__ = ("origin",)

    def __init__(self, origin):
        self.origin = origin

    def __repr__(self):
        return "Var(%s)" % (id(self.origin) & 0xFFFF,)


class SymObj(object):
    """A trace-local allocation; unescaped objects track their fields."""

    __slots__ = ("cls", "fields", "escaped", "serial")

    def __init__(self, cls, serial):
        self.cls = cls
        self.fields = {}        # descr -> term
        self.escaped = False
        self.serial = serial

    def __repr__(self):
        return "Obj(%s#%d%s)" % (self.cls.__name__, self.serial,
                                 "!" if self.escaped else "")


class SymOp(object):
    """An uninterpreted application: pure op, heap read, call result.

    ``tag`` is an IR opnum or a ``"@..."`` string for evaluator-internal
    families (``@field``/``@aitem`` reads carry the heap version in
    ``extra``; ``@call`` carries the call sequence number, ``@callpure``
    the callee).  Terms are compared structurally by the unifier.
    """

    __slots__ = ("tag", "args", "descr", "extra")

    def __init__(self, tag, args, descr=None, extra=None):
        self.tag = tag
        self.args = args
        self.descr = descr
        self.extra = extra

    def __repr__(self):
        name = self.tag if isinstance(self.tag, str) else ir.OP_NAMES[self.tag]
        return "%s(%s)" % (name, ", ".join(repr(a) for a in self.args))


def render_term(term):
    """A short human-readable rendering for diagnostics."""
    text = repr(term)
    if len(text) > 60:
        text = text[:57] + "..."
    return text


class World(object):
    """Shared var table: the same input argument on the recorded and the
    optimized side must resolve to the *same* :class:`SymVar`."""

    def __init__(self):
        self._vars = {}

    def var_of(self, value):
        var = self._vars.get(value)
        if var is None:
            var = SymVar(value)
            self._vars[value] = var
        return var


class SymEval(object):
    """One symbolic pass over an IR op stream (recorded or optimized)."""

    def __init__(self, world, cfg, side="rec"):
        self.world = world
        self.cfg = cfg
        self.side = side
        self.env = {}            # IR value -> term
        self.const_facts = {}    # id(term) -> (term, SymConst)
        self.heap = {}           # (id(obj_term), descr) -> (obj_term, term)
        self.array = {}          # (id(arr_term), index_key) -> (arr, term)
        self.fver = {}           # descr -> write version
        self.aver = 0            # array write version
        self.epoch = 0           # heap-invalidation (call) epoch
        self.entries = []        # observable entries, in order
        self.errors = []         # evaluator-internal failures (-> TV109)
        self.n_call = 0
        self.n_arr = 0
        self.n_obj = 0
        self._consts = {}        # intern table: host value -> SymConst
        self._terms = {}         # intern table: structural key -> SymOp

    # -- infrastructure --------------------------------------------------

    def const(self, value):
        """Intern a constant so identical constants are one term (the
        optimizer CSEs by value; identity-keyed facts need this)."""
        try:
            key = (value.__class__,
                   repr(value) if isinstance(value, float) else value)
            hash(key)
        except TypeError:
            key = ("~id", id(value))
        term = self._consts.get(key)
        if term is None:
            term = SymConst(value)
            self._consts[key] = term
        return term

    def _mk(self, tag, args, descr=None, extra=None):
        """Intern an application term: re-evaluating the same pure op on
        the same arguments yields the *identical* term, mirroring the
        optimizer's CSE (guard dedup facts are identity-keyed)."""
        key = (tag, tuple(id(a) for a in args), id(descr), extra)
        term = self._terms.get(key)
        if term is None:
            term = SymOp(tag, tuple(args), descr, extra)
            self._terms[key] = term
        return term

    def seed(self, value, term):
        self.env[value] = term

    def resolve(self, value):
        if isinstance(value, ir.Const):
            return self.const(value.value)
        term = self.env.get(value)
        if term is None:
            self.errors.append(
                "use of value %r with no definition in this stream" % (value,))
            term = self.world.var_of(value)
            self.env[value] = term
        return self._subst_const(term)

    def _subst_const(self, term):
        fact = self.const_facts.get(id(term))
        if fact is not None:
            return fact[1]
        return term

    def set_fact(self, term, const):
        if not isinstance(term, (SymConst,)):
            self.const_facts[id(term)] = (term, const)

    def force(self, term):
        """Escape point: synthesize the allocation + stores of an
        unescaped object, in the optimizer's canonical (offset) order."""
        if isinstance(term, SymObj) and not term.escaped:
            term.escaped = True
            self.entries.append(("new", term))
            for descr in sorted(term.fields, key=lambda d: d.offset):
                val = self._subst_const(term.fields[descr])
                self.force(val)
                self.entries.append(("setfield", term, descr, val))
                self.heap[(id(term), descr)] = (term, val)
        return term

    def _invalidate_heap(self):
        self.heap.clear()
        self.array.clear()
        self.epoch += 1

    def _index_key(self, term):
        if isinstance(term, SymConst):
            try:
                hash(term.value)
            except TypeError:
                return ("v", id(term))
            return ("c", term.value)
        return ("v", id(term))

    # -- the pass --------------------------------------------------------

    def run(self, ops):
        for op in ops:
            self.run_op(op)

    def run_op(self, op):
        opnum = op.opnum
        if opnum == ir.LABEL:
            for arg in op.args:
                if arg not in self.env:
                    self.env[arg] = self.world.var_of(arg)
            return
        if opnum == ir.DEBUG_MERGE_POINT:
            snap = (self.eval_snapshot(op.snapshot)
                    if op.snapshot is not None else None)
            self.entries.append(("merge", op.descr, snap))
            return
        if opnum in ir.GUARDS:
            self._run_guard(op)
            return
        if opnum == ir.NEW_WITH_VTABLE:
            self.n_obj += 1
            self.env[op] = SymObj(op.args[0].value, self.n_obj)
            return
        if opnum == ir.SETFIELD_GC:
            self._run_setfield(op)
            return
        if opnum in (ir.GETFIELD_GC, ir.GETFIELD_GC_PURE):
            self._run_getfield(op)
            return
        if opnum == ir.NEW_ARRAY:
            length = self.resolve(op.args[0])
            self.n_arr += 1
            self.entries.append(("new_array", length, op.descr))
            self.env[op] = self._mk("@newarr", (length,), op.descr,
                                    self.n_arr)
            return
        if opnum == ir.SETARRAYITEM_GC:
            arr = self.resolve(op.args[0])
            index = self.resolve(op.args[1])
            value = self.force(self.resolve(op.args[2]))
            self.entries.append(
                ("setarrayitem", arr, index, value, op.descr))
            self.array.clear()     # conservative aliasing, like the opt
            self.aver += 1
            self.array[(id(arr), self._index_key(index))] = (arr, value)
            self.env[op] = value
            return
        if opnum == ir.GETARRAYITEM_GC:
            arr = self.resolve(op.args[0])
            index = self.resolve(op.args[1])
            key = (id(arr), self._index_key(index))
            cached = self.array.get(key)
            if cached is not None:
                self.env[op] = cached[1]
                return
            term = self._mk("@aitem", (arr, index), op.descr,
                            (self.epoch, self.aver))
            self.array[key] = (arr, term)
            self.env[op] = term
            return
        if opnum in (ir.CALL, ir.CALL_PURE):
            args = tuple(self.force(self.resolve(a)) for a in op.args)
            func = op.descr.func
            if opnum == ir.CALL_PURE:
                self.env[op] = self._mk("@callpure", args, None, func)
                return
            self.n_call += 1
            self.entries.append(("call", func, args, op.descr))
            self.env[op] = self._mk("@call", (), None, self.n_call)
            if func.invalidates_heap:
                self._invalidate_heap()
            return
        if opnum == ir.CALL_ASSEMBLER:
            args = tuple(self.force(self.resolve(a)) for a in op.args)
            self.n_call += 1
            self.entries.append(("call_asm", args, op.descr))
            self.env[op] = self._mk("@call", (), None, self.n_call)
            self._invalidate_heap()
            return
        if opnum in (ir.PTR_EQ, ir.PTR_NE):
            a = self.resolve(op.args[0])
            b = self.resolve(op.args[1])
            virtual = ((isinstance(a, SymObj) and not a.escaped)
                       or (isinstance(b, SymObj) and not b.escaped))
            if self.cfg.opt_virtuals and virtual:
                # A virtual is a fresh allocation: identity is decidable.
                same = a is b
                self.env[op] = self.const(
                    same if opnum == ir.PTR_EQ else not same)
                return
            self._run_pure(op, [a, b])
            return
        if opnum == ir.FINISH:
            args = tuple(self.force(self.resolve(a)) for a in op.args)
            self.entries.append(("finish", args))
            return
        self._run_pure(op)

    def _run_pure(self, op, args=None):
        if args is None:
            args = [self.resolve(a) for a in op.args]
        opnum = op.opnum
        if (opnum in FOLDABLE
                and all(isinstance(a, SymConst) for a in args)):
            try:
                result = EVAL[opnum](*[a.value for a in args])
            except Exception:
                pass
            else:
                self.env[op] = self.const(result)
                return
        self.env[op] = self._mk(opnum, args, op.descr)

    def _run_setfield(self, op):
        obj = self.resolve(op.args[0])
        value = self.resolve(op.args[1])
        descr = op.descr
        if isinstance(obj, SymObj) and not obj.escaped:
            obj.fields[descr] = value
            self.env[op] = value
            return
        value = self.force(value)
        self.entries.append(("setfield", obj, descr, value))
        self.fver[descr] = self.fver.get(descr, 0) + 1
        stale = [k for k in self.heap if k[1] is descr]
        for key in stale:
            del self.heap[key]
        self.heap[(id(obj), descr)] = (obj, value)
        self.env[op] = value

    def _run_getfield(self, op):
        obj = self.resolve(op.args[0])
        descr = op.descr
        if isinstance(obj, SymObj) and (not obj.escaped or descr.immutable):
            # Virtual-field forwarding; for escaped (forced) objects an
            # immutable field can never change, so the tracked value
            # stays valid — the optimizer forwards both the same way.
            value = obj.fields.get(descr)
            if value is not None:
                self.env[op] = self._subst_const(value)
                return
            if not obj.escaped:
                self.errors.append(
                    "read of unset virtual field %s.%s"
                    % (render_term(obj), descr.field))
                self.env[op] = self._mk("@uninit", (obj,), descr)
                return
        if descr.immutable and isinstance(obj, SymConst):
            try:
                self.env[op] = self.const(getattr(obj.value, descr.field))
            except AttributeError:
                self.errors.append(
                    "constant %s has no field %r"
                    % (render_term(obj), descr.field))
                self.env[op] = self._mk("@field", (obj,), descr, (0, 0))
            return
        if descr.immutable:
            # Immutable reads are version-free: like the optimizer's
            # GETFIELD_GC_PURE CSE they survive calls and stores.
            self.env[op] = self._mk("@ifield", (obj,), descr)
            return
        key = (id(obj), descr)
        cached = self.heap.get(key)
        if cached is not None:
            self.env[op] = self._subst_const(cached[1])
            return
        term = self._mk("@field", (obj,), descr,
                        (self.epoch, self.fver.get(descr, 0)))
        self.heap[key] = (obj, term)
        self.env[op] = term

    def _run_guard(self, op):
        opnum = op.opnum
        args = [self.resolve(a) for a in op.args]
        value = args[0]
        if opnum == ir.GUARD_VALUE:
            value = self.force(value)
            args[0] = value
        snap = (self.eval_snapshot(op.snapshot)
                if op.snapshot is not None else None)
        self.entries.append(("guard", opnum, tuple(args), snap, op))
        if opnum == ir.GUARD_VALUE and isinstance(args[1], SymConst):
            self.set_fact(value, args[1])
        elif opnum in (ir.GUARD_TRUE, ir.GUARD_FALSE):
            self.set_fact(value, self.const(opnum == ir.GUARD_TRUE))

    # -- snapshots -------------------------------------------------------

    def eval_snapshot(self, snapshot):
        """Freeze a snapshot into a comparable structure.

        Unescaped objects (and artifact :class:`VirtualSpec` values)
        freeze to ``("vobj", cls, ((descr, frozen), ...))`` — both
        sides must agree that the slot is rematerializable with the
        same shape.  Cycles freeze to ``("cyc", i)`` markers.
        """
        memo = {}

        def frozen(value):
            return self._freeze_snapshot_value(value, memo)

        frames = tuple(
            ("frame", frame.code, frame.pc,
             tuple(frozen(v) for v in frame.locals),
             tuple(frozen(v) for v in frame.stack))
            for frame in snapshot.frames)
        return ("snap", frames)

    def _freeze_snapshot_value(self, value, memo):
        if isinstance(value, VirtualSpec):
            key = id(value)
            if key in memo:
                return ("cyc", memo[key])
            memo[key] = len(memo)
            fields = tuple(
                (descr, self._freeze_snapshot_value(value.fields[descr],
                                                    memo))
                for descr in sorted(value.fields, key=lambda d: d.offset))
            return ("vobj", value.cls, fields)
        term = self.resolve(value)
        return self._freeze_term(term, memo)

    def _freeze_term(self, term, memo):
        if isinstance(term, SymObj) and not term.escaped:
            key = id(term)
            if key in memo:
                return ("cyc", memo[key])
            memo[key] = len(memo)
            fields = tuple(
                (descr,
                 self._freeze_term(self._subst_const(term.fields[descr]),
                                   memo))
                for descr in sorted(term.fields, key=lambda d: d.offset))
            return ("vobj", term.cls, fields)
        return term


class Unifier(object):
    """Structural term equality with a growing allocation bijection.

    Two streams name their allocations independently; the unifier pairs
    them up as it compares observable entries, and rejects any pairing
    that is not a bijection.  Failed speculative matches roll back via
    the journal (:meth:`mark` / :meth:`rollback`).
    """

    def __init__(self):
        self.fwd = {}    # id(a-side SymObj) -> (a, b)
        self.bwd = {}    # id(b-side SymObj) -> (b, a)
        self._journal = []

    def mark(self):
        return len(self._journal)

    def rollback(self, mark):
        while len(self._journal) > mark:
            ka, kb = self._journal.pop()
            del self.fwd[ka]
            del self.bwd[kb]

    def unify(self, a, b):
        if a is b:
            return True
        if type(a) is not type(b):
            return False
        if isinstance(a, SymConst):
            return const_values_equal(a.value, b.value)
        if isinstance(a, SymObj):
            paired = self.fwd.get(id(a))
            if paired is not None:
                return paired[1] is b
            if id(b) in self.bwd:
                return False
            if a.cls is not b.cls:
                return False
            self.fwd[id(a)] = (a, b)
            self.bwd[id(b)] = (b, a)
            self._journal.append((id(a), id(b)))
            return True
        if isinstance(a, SymOp):
            if a.tag != b.tag or a.extra != b.extra:
                return False
            if not descr_match(a.descr, b.descr):
                return False
            if len(a.args) != len(b.args):
                return False
            for x, y in zip(a.args, b.args):
                if not self.unify(x, y):
                    return False
            return True
        return False    # distinct SymVars never unify

    def unify_frozen(self, a, b):
        """Compare two frozen snapshot structures."""
        a_tuple = isinstance(a, tuple)
        if a_tuple != isinstance(b, tuple):
            return False
        if not a_tuple:
            return self.unify(a, b)
        if not a or not b or a[0] != b[0] or len(a) != len(b):
            return False
        tag = a[0]
        if tag == "cyc":
            return a[1] == b[1]
        if tag == "vobj":
            if a[1] is not b[1]:
                return False
            if len(a[2]) != len(b[2]):
                return False
            for (da, va), (db, vb) in zip(a[2], b[2]):
                if not descr_match(da, db):
                    return False
                if not self.unify_frozen(va, vb):
                    return False
            return True
        if tag == "frame":
            if a[1] is not b[1] or a[2] != b[2]:
                return False
            return (self._unify_seq(a[3], b[3])
                    and self._unify_seq(a[4], b[4]))
        if tag == "snap":
            return self._unify_seq(a[1], b[1])
        return False

    def _unify_seq(self, seq_a, seq_b):
        if len(seq_a) != len(seq_b):
            return False
        for x, y in zip(seq_a, seq_b):
            if not self.unify_frozen(x, y):
                return False
        return True


def const_values_equal(a, b):
    """Bit-faithful constant comparison (floats by repr, bool != int)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return repr(a) == repr(b)
    try:
        return bool(a == b)
    except Exception:
        return False


def descr_match(a, b):
    if a is b:
        return True
    if a is None or b is None:
        return False
    if isinstance(a, tuple) and isinstance(b, tuple):
        return a == b
    return False
