"""TinyPy threaded-code compiler for the baseline tier (tier-1 JIT).

The tier compiles a whole code object — no value profiling, no IR —
into *subroutine-threaded* form: per bytecode, a call through a handler
table replaces the interpreter's full fetch/decode dispatch sequence.
On the virtual ISA that means two things:

* the per-bytecode dispatch block shrinks from the interpreter's
  ``_DISPATCH_MIX`` (19 insns of fetch, decode, bounds checks and bulk
  branching) to :data:`_TIER1_DISPATCH_MIX` — load the next threaded
  entry, advance, and take the indirect jump ``dispatch_event`` already
  charges;
* the indirect-branch pc hash becomes a *per-site* constant derived
  from the code object and pc (every threaded call site jumps to one
  handler) instead of the interpreter's shared, previous-opcode-keyed
  dispatch site — each site is near-monomorphic in the BTB, the classic
  threaded-code effect the two-mode system cannot show.

Handler *bodies* are untouched: threaded code calls the exact op_*
handlers the interpreter calls, in the same order, so the guest-visible
event stream (stdout, DISPATCH counts, conditional branches,
allocations, JitDriver hooks) is identical with the tier on or off.

The unit of fusion is shared with quickening: straight-line runs of
machine-silent bytecodes (:func:`repro.interp.quicken.find_runs` over
the same fusable set) are batched through ``Machine.quick_run``, with
the tier's dispatch block and site hashes in the items.  Unlike
quickening, tier runs need no predecessor-opcode guard — threaded sites
do not hash on the previous opcode — so runs may start at pc 0 and stay
valid however control arrives.
"""

from repro.interp.quicken import find_runs
from repro.interp.tier1 import ThreadedCode
from repro.isa import insns
from repro.pylang.quicken import _HANDLERS, JUMP_OPS

# Threaded dispatch: load the next entry from the threaded table, bump
# the thread pointer, and fall into the indirect jump (charged by
# dispatch_event / quick_run on top of this block).
_TIER1_DISPATCH_MIX = insns.mix(load=2, alu=1)

# Per-bytecode translation cost, charged once at promotion: read the
# bytecode, look up the handler address, emit the threaded entry.  At
# the default tier1_threshold this amortizes within roughly one further
# pass over the code object.
_TIER1_COMPILE_MIX = insns.mix(load=4, alu=7, store=4)


def _site_hash(seed, pc):
    """BTB pc hash for one threaded call site.

    A per-(code, pc) constant well away from the interpreter's shared
    dispatch-site range (``0x200 + (prev_opcode << 3)``) and the guest
    conditional-branch range, so threaded sites claim their own BTB
    entries.
    """
    return 0x40000 + (((seed >> 3) ^ (pc * 0x9E37)) & 0x7FFFF)


class TierSpec(object):
    """Per-guest tier policy + threaded-code compiler.

    TinyPy and TinyScheme share the bytecode format (RktVM inherits the
    whole dispatch loop), so they share this compiler; what differs is
    the *promotion policy*: ``entry_profiling`` guests also count frame
    entries, because idiomatic Scheme loops are tail-recursive calls and
    a backward-jump-only counter would never see them.
    """

    def __init__(self, name, entry_profiling):
        self.name = name
        self.entry_profiling = entry_profiling

    def install_blocks(self, vm):
        """Intern the tier's blocks on the VM's machine (no charges)."""
        machine = vm.ctx.machine
        vm._b_tier1_dispatch = machine.block(_TIER1_DISPATCH_MIX)
        vm._b_tier1_compile = machine.block(_TIER1_COMPILE_MIX)

    def compile(self, vm, code, generation):
        """Compile ``code`` to a :class:`ThreadedCode`, charging the
        per-bytecode translation cost at the current simulated point."""
        machine = vm.ctx.machine
        b_compile = vm._b_tier1_compile
        b_dispatch = vm._b_tier1_dispatch
        exec_block = machine.exec_block
        ops = code.ops
        args = code.args
        n = len(ops)
        for _ in range(n):
            exec_block(b_compile)
        seed = code.pc_seed
        sites = tuple(_site_hash(seed, pc) for pc in range(n))
        charges = vm._quicken_charges
        jump_targets = set()
        merge_targets = set()
        for pc in range(n):
            if ops[pc] in JUMP_OPS:
                target = args[pc]
                jump_targets.add(target)
                if target <= pc:    # backward jump: JitDriver merge point
                    merge_targets.add(target)
        runs = [None] * n

        def fusable(pc):
            return ops[pc] in charges

        for start, end in find_runs(n, fusable, jump_targets,
                                    merge_targets, start_pc=0):
            items = tuple(
                (sites[j], ops[j], charges[ops[j]])
                for j in range(start, end))
            pairs = tuple(
                (_HANDLERS[ops[j]], args[j]) for j in range(start, end))
            n_insns = sum(
                2 + b_dispatch.n_insns + sum(blk.n_insns for blk in blocks)
                for _hash, _op, blocks in items)
            runs[start] = (items, pairs, end, ops[end - 1], n_insns)
        progs = None
        if vm.ctx.config.eventprog:
            # One resident event-program per fused run: same tag, block,
            # items and n_insns as the quick_run call it replaces.
            from repro.backend.eventprog import quick_run_program
            from repro.core import tags

            progs = [None] * n
            for pc, entry in enumerate(runs):
                if entry is not None:
                    progs[pc] = quick_run_program(
                        tags.DISPATCH, b_dispatch, entry[0], entry[4],
                        label="tier1-run")
        return ThreadedCode(code, sites, runs, generation, progs)


# TinyPy promotes on loop headers only: Python loops are backward jumps,
# and counting at call sites as well would promote straight-line glue
# code that never re-executes.
PY_TIER = TierSpec("tinypy", entry_profiling=False)
