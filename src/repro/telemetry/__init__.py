"""Cross-layer telemetry: a structured span/metrics event bus.

The paper's methodology tags events at every layer (application,
interpreter, framework, JIT-IR, assembly) and funnels them into one
measurement substrate.  :mod:`repro.pintool` consumes those annotations
*offline*; this package is the *live* observability counterpart: every
layer emits nested spans and metrics into a :class:`TelemetryBus`, and
exporters turn the event stream into Chrome trace-event JSON (loadable
in ``chrome://tracing`` / Perfetto), per-phase self-time summaries, and
a compact JSONL stream.

Telemetry is **disabled by default** and the disabled path is a no-op
attribute check:

* the harness-level bus is the module attribute :data:`BUS`, ``None``
  while disabled — call sites do ``if telemetry.BUS is not None``;
* per-run VM sessions hang off ``ctx.telemetry`` (``None`` while
  disabled), so interpreter/JIT/GC call sites do
  ``if self.telemetry is not None`` on rare events only.

No listener is registered on any :class:`Machine` while disabled, so
the simulation fast paths (fused dispatch, batched annotations) are
untouched and BENCH numbers do not regress.

Enable programmatically with :func:`enable` / :func:`disable`, or via
the environment knob ``REPRO_TELEMETRY=1`` (which worker processes
inherit, so ``run_many`` fan-outs record too).
"""

import os

from repro.telemetry.bus import TelemetryBus

#: The harness-level bus (wall-clock timeline), or None while disabled.
#: This module attribute *is* the enabled flag.
BUS = None


def enabled():
    """True if telemetry is globally enabled."""
    return BUS is not None


def enable(bus=None):
    """Enable telemetry; returns the harness-level bus.

    Idempotent: if already enabled, the existing bus is returned (a
    caller-provided ``bus`` is only installed when currently disabled).
    """
    global BUS
    if BUS is None:
        BUS = bus if bus is not None else TelemetryBus(
            process_name="harness")
    return BUS


def disable():
    """Disable telemetry; returns the bus that was active (or None)."""
    global BUS
    old = BUS
    BUS = None
    return old


if os.environ.get("REPRO_TELEMETRY") == "1":
    enable()
