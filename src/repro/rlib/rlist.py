"""rlist: resizable-list runtime functions (the list-strategy helpers).

Guest lists store their payload in a plain Python list; growth,
slicing, searching and sorting are AOT entry points (the paper's
Table III shows ``IntegerListStrategy_setslice``,
``BytesListStrategy_setslice``, ``IntegerListStrategy_safe_find`` and
friends as major costs).
"""

from repro.interp.aot import aot
from repro.isa import insns
from repro.rlib.costutil import charge_loop

_COPY_MIX = insns.mix(load=1, store=1, alu=1)
_SCAN_MIX = insns.mix(load=1, alu=2)
_SORT_MIX = insns.mix(load=2, alu=3, store=1)


@aot("rlist.ll_append", "R", "any")
def ll_append(ctx, items, value):
    # Amortized growth: charge a copy when the capacity doubles.
    n = len(items)
    if n and (n & (n - 1)) == 0:
        charge_loop(ctx, n, _COPY_MIX)
    ctx.charge(insns.mix(store=1, alu=2, load=1))
    items.append(value)
    return None


@aot("rlist.ll_pop", "R", "any")
def ll_pop(ctx, items, index):
    moved = len(items) - index - 1
    charge_loop(ctx, max(1, moved), _COPY_MIX)
    return items.pop(index)


@aot("rlist.ll_insert", "R", "any")
def ll_insert(ctx, items, index, value):
    charge_loop(ctx, max(1, len(items) - index), _COPY_MIX)
    items.insert(index, value)
    return None


@aot("rlist.ll_extend", "R", "any")
def ll_extend(ctx, items, other):
    charge_loop(ctx, max(1, len(other)), _COPY_MIX)
    items.extend(other)
    return None


@aot("IntegerListStrategy.setslice", "I", "any")
def ll_setslice(ctx, items, start, stop, source):
    charge_loop(ctx, max(1, (stop - start) + len(source)), _COPY_MIX)
    items[start:stop] = source
    return None


@aot("IntegerListStrategy.fill_in_with_slice", "I", "pure")
def ll_getslice(ctx, items, start, stop):
    start = max(0, min(start, len(items)))
    stop = max(start, min(stop, len(items)))
    charge_loop(ctx, max(1, stop - start), _COPY_MIX)
    return items[start:stop]


@aot("IntegerListStrategy.safe_find", "I", "readonly")
def ll_find(ctx, items, value, eq_fn):
    """Index of value (via eq_fn) or -1."""
    for i, item in enumerate(items):
        if eq_fn(item, value):
            charge_loop(ctx, i + 1, _SCAN_MIX)
            return i
    charge_loop(ctx, max(1, len(items)), _SCAN_MIX)
    return -1


@aot("rlist.ll_contains", "R", "readonly")
def ll_contains(ctx, items, value, eq_fn):
    return ll_find.fn(ctx, items, value, eq_fn) >= 0


@aot("rlist.ll_count", "R", "readonly")
def ll_count(ctx, items, value, eq_fn):
    charge_loop(ctx, max(1, len(items)), _SCAN_MIX)
    return sum(1 for item in items if eq_fn(item, value))


@aot("rlist.ll_reverse", "R", "any")
def ll_reverse(ctx, items):
    charge_loop(ctx, max(1, len(items) // 2), _COPY_MIX)
    items.reverse()
    return None


@aot("rlist.ll_mul", "R", "pure")
def ll_mul(ctx, items, count):
    charge_loop(ctx, max(1, len(items) * max(0, count)), _COPY_MIX)
    return items * count


@aot("listsort.sort", "L", "any")
def ll_sort(ctx, items, lt_fn):
    """In-place merge sort using a guest-supplied less-than callback.

    The callback may recursively run guest code (rich comparisons); the
    sort itself charges n log n costs like RPython's listsort.
    """
    n = len(items)
    if n > 1:
        log_n = max(1, n.bit_length() - 1)
        charge_loop(ctx, n * log_n, _SORT_MIX)
    _merge_sort(items, 0, n, lt_fn, [None] * n)
    return None


def _merge_sort(items, low, high, lt_fn, scratch):
    if high - low <= 1:
        return
    mid = (low + high) // 2
    _merge_sort(items, low, mid, lt_fn, scratch)
    _merge_sort(items, mid, high, lt_fn, scratch)
    i, j, k = low, mid, low
    while i < mid and j < high:
        if lt_fn(items[j], items[i]):
            scratch[k] = items[j]
            j += 1
        else:
            scratch[k] = items[i]
            i += 1
        k += 1
    while i < mid:
        scratch[k] = items[i]
        i += 1
        k += 1
    while j < high:
        scratch[k] = items[j]
        j += 1
        k += 1
    items[low:high] = scratch[low:high]
