# chaos: the chaosgame benchmark — iterated function system generating
# fractal points onto a discretized canvas. Float + object heavy.
N = 6000


class GVector:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def dist(self, other):
        dx = self.x - other.x
        dy = self.y - other.y
        return (dx * dx + dy * dy) ** 0.5

    def linear_combination(self, other, l1, l2):
        return GVector(self.x * l1 + other.x * l2,
                       self.y * l1 + other.y * l2)


class Spline:
    def __init__(self, points):
        self.points = points

    def at(self, t):
        n = len(self.points)
        seg = int(t * (n - 1))
        if seg >= n - 1:
            seg = n - 2
        local = t * (n - 1) - seg
        return self.points[seg].linear_combination(
            self.points[seg + 1], 1.0 - local, local)


class Chaosgame:
    def __init__(self, splines):
        self.splines = splines
        self.minx = 1000.0
        self.miny = 1000.0
        self.maxx = -1000.0
        self.maxy = -1000.0
        for spline in splines:
            for p in spline.points:
                if p.x < self.minx:
                    self.minx = p.x
                if p.x > self.maxx:
                    self.maxx = p.x
                if p.y < self.miny:
                    self.miny = p.y
                if p.y > self.maxy:
                    self.maxy = p.y
        self.width = self.maxx - self.minx
        self.height = self.maxy - self.miny
        self.rand_state = 1234567

    def rand(self):
        self.rand_state = (self.rand_state * 1103515245 + 12345) % 2147483648
        return self.rand_state / 2147483648.0

    def transform_point(self, point, spline):
        t = self.rand()
        target = spline.at(t)
        return GVector((point.x + target.x) * 0.5,
                       (point.y + target.y) * 0.5)

    def create_image_chaos(self, w, h, iterations):
        image = []
        for i in range(w):
            image.append([0] * h)
        point = GVector((self.maxx + self.minx) * 0.5,
                        (self.maxy + self.miny) * 0.5)
        n_splines = len(self.splines)
        for i in range(iterations):
            choice = int(self.rand() * n_splines)
            if choice >= n_splines:
                choice = n_splines - 1
            point = self.transform_point(point, self.splines[choice])
            x = (point.x - self.minx) / self.width * (w - 1)
            y = (point.y - self.miny) / self.height * (h - 1)
            xi = int(x)
            yi = int(y)
            if xi < 0:
                xi = 0
            if yi < 0:
                yi = 0
            if xi >= w:
                xi = w - 1
            if yi >= h:
                yi = h - 1
            image[xi][yi] = image[xi][yi] + 1
        checksum = 0
        for i in range(w):
            for j in range(h):
                checksum = (checksum + image[i][j] * (i + 3 * j)) % 1000000007
        return checksum


def run_chaos(iterations):
    splines = [
        Spline([GVector(1.6, 0.4), GVector(1.0, 1.9), GVector(0.3, 0.4)]),
        Spline([GVector(2.0, 1.1), GVector(2.5, 2.0), GVector(2.1, 2.3)]),
        Spline([GVector(0.5, 1.2), GVector(0.2, 2.0), GVector(0.9, 2.2)]),
    ]
    game = Chaosgame(splines)
    checksum = game.create_image_chaos(40, 40, iterations)
    print("chaos", checksum)


run_chaos(N)
