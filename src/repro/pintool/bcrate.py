"""Bytecode-rate tracking from dispatch-loop annotations (Figure 5).

The interpreter emits a DISPATCH annotation at the top of its dispatch
loop; compiled traces contain one zero-cost ``debug_merge_point`` per
inlined bytecode, and the trace executor emits DISPATCH for each.  That
gives an *independent* measure of completed guest work (number of guest
bytecodes) regardless of whether the interpreter, the tracing
meta-interpreter, or JIT-compiled code is running — which is exactly how
the paper finds JIT warmup break-even points.
"""

from repro.core import tags


class BytecodeRateTracker:
    """Counts dispatched bytecodes; optionally records a timeline."""

    def __init__(self, machine, bucket_insns=0):
        self._machine = machine
        self.bytecodes = 0
        self.bucket_insns = bucket_insns
        # Timeline points: (retired_instructions, cumulative_bytecodes).
        self.timeline = [(0, 0)] if bucket_insns else []
        self._next_mark = bucket_insns

    def on_annot(self, tag, payload):
        if tag != tags.DISPATCH:
            return
        self.on_dispatch(tag, payload)

    def on_dispatch(self, tag, payload):
        """Tag-filtered listener: only ever registered for DISPATCH."""
        self.bytecodes += 1
        if self.bucket_insns:
            insns_now = self._machine.instructions
            if insns_now >= self._next_mark:
                self.timeline.append((insns_now, self.bytecodes))
                self._next_mark = insns_now + self.bucket_insns

    def on_dispatch_count(self, tag, payload):
        """Count-only listener for runs with no timeline buckets."""
        self.bytecodes += 1

    def on_dispatch_run(self, tag, payload, n):
        """Batched count-only listener: n dispatches at once."""
        self.bytecodes += n

    def finish(self):
        if self.bucket_insns:
            self.timeline.append((self._machine.instructions, self.bytecodes))


def break_even_instructions(timeline, reference_rate):
    """First instruction count where cumulative work matches a reference.

    ``reference_rate`` is the reference VM's bytecodes-per-instruction
    (e.g. CPython's).  Returns the earliest retired-instruction count at
    which this VM has executed at least as many bytecodes as the reference
    would have by the same point, and never falls behind afterwards —
    the paper's break-even definition — or None if never reached.
    """
    if not timeline:
        return None
    candidate = None
    for insns_done, bytecodes_done in timeline:
        if bytecodes_done >= reference_rate * insns_done:
            if candidate is None:
                candidate = insns_done
        else:
            candidate = None
    return candidate


def rate_curve(timeline):
    """Differentiate a cumulative timeline into per-bucket rates.

    Returns a list of (instructions, bytecodes_per_kiloinstruction).
    """
    curve = []
    for (i0, b0), (i1, b1) in zip(timeline, timeline[1:]):
        if i1 > i0:
            curve.append((i1, 1000.0 * (b1 - b0) / (i1 - i0)))
    return curve
