"""Text rendering of tables and figures (plus CSV export).

The paper's tables become aligned text tables; its bar/line figures
become ASCII charts — enough to eyeball the reproduced *shapes*.
"""

import os


def render_table(headers, rows, title=None):
    """Align columns; cells are stringified."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(items, width=46, title=None, fmt="%.3f"):
    """Horizontal bar chart from (label, value) pairs."""
    lines = []
    if title:
        lines.append(title)
    if not items:
        return title or ""
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(str(label)) for label, _ in items)
    for label, value in items:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append("%s  %s %s" % (
            str(label).ljust(label_width), (fmt % value).rjust(9), bar))
    return "\n".join(lines)


def render_stacked(rows, columns, width=50, title=None):
    """Stacked horizontal bars: rows = (label, {column: fraction})."""
    symbols = {}
    palette = "#=+:*%@o."
    for i, column in enumerate(columns):
        symbols[column] = palette[i % len(palette)]
    lines = []
    if title:
        lines.append(title)
    lines.append("legend: " + "  ".join(
        "%s=%s" % (symbols[c], c) for c in columns))
    label_width = max((len(str(label)) for label, _ in rows), default=4)
    for label, fractions in rows:
        bar = []
        for column in columns:
            n = int(round(width * fractions.get(column, 0.0)))
            bar.append(symbols[column] * n)
        lines.append("%s  |%s" % (str(label).ljust(label_width),
                                  "".join(bar)))
    return "\n".join(lines)


def render_series(points, width=64, height=12, title=None):
    """A crude line plot of (x, y) points (the warmup curves)."""
    lines = []
    if title:
        lines.append(title)
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max += 1
    if y_max == y_min:
        y_max += 1
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = "*"
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append("y: %.3g..%.3g   x: %.3g..%.3g"
                 % (y_min, y_max, x_min, x_max))
    return "\n".join(lines)


def results_dir():
    path = os.environ.get("REPRO_RESULTS_DIR")
    if not path:
        path = os.path.join(os.getcwd(), "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_text(name, text):
    path = os.path.join(results_dir(), name)
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


def save_csv(name, headers, rows):
    path = os.path.join(results_dir(), name)
    with open(path, "w") as handle:
        handle.write(",".join(str(h) for h in headers) + "\n")
        for row in rows:
            handle.write(",".join(str(c) for c in row) + "\n")
    return path
