"""Property-based differential tests: random guest programs must match
host Python exactly (with and without the JIT)."""

import contextlib
import io

from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.pylang.interp import PyVM


def host_output(source):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        exec(compile(source, "<prop>", "exec"), {})
    return buffer.getvalue()


def jit_output(source, threshold=4):
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = threshold
    cfg.jit.bridge_threshold = 2
    vm = PyVM(VMContext(cfg))
    vm.run_source(source)
    return vm.stdout()


@given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=8),
       st.integers(20, 60))
@settings(max_examples=25, deadline=None)
def test_arith_loop_matches_host(seeds, iterations):
    source = "vals = %r\n" % (seeds,)
    source += """
acc = 0
for it in range(%d):
    for v in vals:
        acc = acc + v * 3 - (acc >> 2) + (v ^ it)
        if acc > 2 ** 40:
            acc = acc %% 12345577
print(acc)
""" % iterations
    assert jit_output(source) == host_output(source)


@given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6),
       st.integers(10, 40))
@settings(max_examples=20, deadline=None)
def test_dict_counter_matches_host(keys, iterations):
    source = "keys = %r\n" % (keys,)
    source += """
counts = {}
for it in range(%d):
    for k in keys:
        counts[k] = counts.get(k, 0) + it
total = 0
for k in counts:
    total += counts[k]
print(total, len(counts))
""" % iterations
    assert jit_output(source) == host_output(source)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=10))
@settings(max_examples=20, deadline=None)
def test_list_pipeline_matches_host(values):
    source = "xs = %r\n" % (values,)
    source += """
ys = []
for it in range(30):
    for x in xs:
        ys.append(x * it)
ys.sort()
ys.reverse()
print(ys[0], ys[-1], len(ys), sum(ys))
"""
    assert jit_output(source) == host_output(source)


@given(st.integers(2, 40), st.integers(2, 9))
@settings(max_examples=15, deadline=None)
def test_bignum_growth_matches_host(iterations, base):
    source = """
n = 1
for i in range(%d):
    n = n * %d + i
print(n)
print(n %% 1000003, n // 7)
""" % (iterations, base)
    assert jit_output(source) == host_output(source)


@given(st.floats(min_value=-100, max_value=100,
                 allow_nan=False, allow_infinity=False),
       st.integers(10, 50))
@settings(max_examples=15, deadline=None)
def test_float_loop_matches_host(start, iterations):
    source = """
x = %r
acc = 0.0
for i in range(%d):
    acc = acc + x * 0.5 - i * 0.25
    x = x * 0.99
print("%%.9f %%.9f" %% (acc, x))
""" % (start, iterations)
    assert jit_output(source) == host_output(source)
