"""Resume data: snapshots that let guards deoptimize back to the interpreter.

Every ``debug_merge_point`` captures the virtual frame stack — for each
guest frame: the code object, the pc, and the IR values currently held in
locals and on the operand stack.  Guards reference the most recent
snapshot.  On guard failure the executor evaluates the snapshot's values
(materializing :class:`VirtualSpec` objects for allocation-removed
virtuals) and the interpreter is resumed at the snapshot's pc — the
blackhole-deoptimization process of Section II.
"""


class FrameState(object):
    """One guest frame inside a snapshot.

    ``extra`` is opaque interpreter data restored verbatim at deopt
    (e.g. TinyPy keeps (module, discard_return) there).
    """

    __slots__ = ("code", "pc", "locals", "stack", "extra")

    def __init__(self, code, pc, locals_values, stack_values, extra=None):
        self.code = code
        self.pc = pc
        self.locals = locals_values
        self.stack = stack_values
        self.extra = extra

    def map_values(self, fn):
        return FrameState(
            self.code,
            self.pc,
            tuple(fn(v) for v in self.locals),
            tuple(fn(v) for v in self.stack),
            self.extra,
        )

    def __repr__(self):
        return "<FrameState %s pc=%d>" % (self.code, self.pc)


class Snapshot(object):
    """The full virtual frame stack at one merge point."""

    __slots__ = ("frames",)

    def __init__(self, frames):
        self.frames = frames

    @property
    def innermost(self):
        return self.frames[-1]

    def map_values(self, fn):
        return Snapshot(tuple(f.map_values(fn) for f in self.frames))

    def iter_values(self):
        for frame in self.frames:
            for value in frame.locals:
                yield value
            for value in frame.stack:
                yield value


class VirtualSpec(object):
    """A removed allocation, reconstructable at deoptimization time.

    ``fields`` maps :class:`FieldDescr` -> IR value (possibly another
    VirtualSpec for nested virtuals).
    """

    __slots__ = ("cls", "fields", "size")

    def __init__(self, cls, fields, size):
        self.cls = cls
        self.fields = fields
        self.size = size

    def __repr__(self):
        return "<VirtualSpec %s>" % self.cls.__name__


class DeoptState(object):
    """Concrete interpreter state produced by a deoptimization.

    ``frames`` is a list of (code, pc, locals_list, stack_list) with
    concrete guest values; the interpreter driver rebuilds real frames
    from it and resumes at the innermost frame's pc.
    """

    __slots__ = ("frames",)

    def __init__(self, frames):
        self.frames = frames
