"""The Machine: execution target for the virtual instruction stream.

Every layer of the simulated system (interpreter handlers, the JIT
backend's lowered traces, the GC, AOT runtime functions) ultimately emits
instruction-stream events into one :class:`Machine`.  The machine:

* retires instructions and accumulates cycles with a deterministic
  superscalar timing model (issue width + per-class stalls + branch
  mispredict penalties from real predictors + cache miss penalties),
* maintains PAPI-style counters that can be snapshotted at any point
  (the paper reads performance counters on cross-layer annotations),
* dispatches ``NOP_ANNOT`` annotations to registered listeners (the
  PinTool attaches here, exactly as Pin intercepts tagged nops).

This mirrors the paper's measurement stack: the "hardware" is the timing
model, "PAPI" is :meth:`counters`, and "Pin" is the listener interface.
"""

from collections import namedtuple

from repro.backend import eventprog as _eventprog
from repro.backend import kernelspec as _kernelspec
from repro.core.errors import ReproError
from repro.isa import insns
from repro.uarch.blocks import BlockDescr, FusedDescr, fold_class_counts
from repro.uarch.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    Btb,
    GsharePredictor,
    ReturnAddressStack,
)
from repro.uarch.cache import CacheHierarchy

_BR_BULK = insns.BR_BULK
_BR_IND = insns.BR_IND
_BR_COND = insns.BR_COND
_CALL = insns.CALL
_RET = insns.RET
_LOAD = insns.LOAD
_STORE = insns.STORE
_NOP_ANNOT = insns.NOP_ANNOT


class SimulationLimitReached(ReproError):
    """Raised when ``max_instructions`` is exceeded (the paper's 10B cap)."""


CounterSnapshot = namedtuple(
    "CounterSnapshot",
    [
        "instructions",
        "cycles",
        "branches",
        "branch_misses",
        "loads",
        "stores",
        "l1d_misses",
        "annotations",
    ],
)


def _make_cond_predictor(kind, bits):
    if kind == "gshare":
        return GsharePredictor(bits)
    if kind == "bimodal":
        return BimodalPredictor(bits)
    if kind == "always_taken":
        return AlwaysTakenPredictor()
    raise ReproError("unknown predictor kind %r" % kind)


class Machine:
    """Retires instruction-stream events and keeps the clock."""

    __slots__ = (
        "config", "issue_width", "mispredict_penalty", "cond_predictor",
        "btb", "ras", "dcache",
        "_cond_predict", "_gshare", "_btb_predict", "_ras_push", "_ras_pop",
        "_dc_access", "_l1", "_l1_shift", "_l1_mask", "_l1_sets",
        "_stalls", "_inv_width", "_load_cost", "_store_cost",
        "instructions", "cycles", "branches", "branch_misses",
        "loads", "stores", "annotations", "_class_counts",
        "max_instructions", "_annot_listeners", "_tag_listeners",
        "_listener_runs", "_tag_runners", "_listener_epoch",
        "_bulk_miss_carry",
        "bulk_miss_rate", "_block_cache", "_fused_cache",
        "_blocks", "_fused",
    )

    # Which simulation backend this class implements; the compiled
    # backends (repro.backend) override it with "fast" / "native".
    backend = "python"

    def __new__(cls, config=None, predictor="gshare"):
        # Backend factory: ``Machine(config)`` returns an instance of the
        # implementation class ``config.sim_backend`` selects (reference
        # Python, exec-specialized "fast", or cffi-compiled "native" —
        # see repro.backend).  Subclass constructors pass through.
        if cls is Machine and config is not None:
            backend_name = getattr(config, "sim_backend", "python")
            if backend_name != "python":
                from repro.backend import machine_class
                impl = machine_class(backend_name)
                if impl is not Machine:
                    return impl.__new__(impl, config, predictor)
        return object.__new__(cls)

    def __init__(self, config, predictor="gshare"):
        config.validate()
        self.config = config
        ucfg = config.uarch
        self.issue_width = ucfg.issue_width
        self.mispredict_penalty = ucfg.mispredict_penalty
        self.cond_predictor = _make_cond_predictor(predictor, ucfg.gshare_bits)
        self.btb = Btb(ucfg.btb_entries)
        self.ras = ReturnAddressStack(ucfg.ras_entries)
        self.dcache = CacheHierarchy(ucfg)
        # Bound-method shortcuts for the per-event hot paths.
        self._cond_predict = self.cond_predictor.predict_and_update
        # branch_block inlines the gshare update (the JIT guard hot
        # path); other predictor kinds go through the generic call.
        self._gshare = (self.cond_predictor
                        if type(self.cond_predictor) is GsharePredictor
                        else None)
        self._btb_predict = self.btb.predict_and_update
        self._ras_push = self.ras.push
        self._ras_pop = self.ras.predict_and_pop
        self._dc_access = self.dcache.access
        # L1 internals for the inlined MRU-hit fast path in load/store
        # (an MRU hit leaves LRU state untouched and costs no penalty).
        l1 = self.dcache.l1
        self._l1 = l1
        self._l1_shift = l1.line_shift
        self._l1_mask = l1.set_mask
        self._l1_sets = l1.sets
        # Per-class stall weights, indexed by instruction class.
        stalls = [0.0] * insns.N_CLASSES
        stalls[insns.MUL] = ucfg.stall_mul
        stalls[insns.DIV] = ucfg.stall_div
        stalls[insns.FPU] = ucfg.stall_fpu
        stalls[insns.LOAD] = ucfg.stall_load
        stalls[insns.STORE] = ucfg.stall_store
        self._stalls = stalls
        self._inv_width = 1.0 / self.issue_width
        # Precomputed per-event cycle costs (same float values as the
        # seed's inv_width + stall additions, computed once).
        self._load_cost = self._inv_width + stalls[insns.LOAD]
        self._store_cost = self._inv_width + stalls[insns.STORE]
        # Counters.
        self.instructions = 0
        self.cycles = 0.0
        self.branches = 0
        self.branch_misses = 0
        self.loads = 0
        self.stores = 0
        self.annotations = 0
        self._class_counts = [0] * insns.N_CLASSES
        self.max_instructions = config.max_instructions
        self._annot_listeners = []
        self._tag_listeners = {}
        self._listener_runs = {}
        self._tag_runners = {}
        # Bumped on every listener add/remove; compiled backends key
        # their cached listener-gate decisions on it.
        self._listener_epoch = 0
        self._bulk_miss_carry = 0.0
        # Miss rate for br_bulk mix entries (interpreter/runtime code).
        self.bulk_miss_rate = 0.045
        # Block-descriptor fast path (see repro.uarch.blocks).
        self._block_cache = {}
        self._fused_cache = {}
        self._blocks = []
        self._fused = []

    def reset(self):
        """Reset all mutable simulation state in place, keeping config.

        Predictor, BTB, RAS and cache tables and the class-count list
        are cleared *in place* — identity-preserving, because compiled
        backend kernels close over these exact objects — counters and
        the bulk-miss fractional carry return to zero, and per-block
        execution counts are cleared.  Listener registrations are
        measurement configuration, not simulation state, and survive;
        so do memoized block descriptors (their lowering is a pure
        function of the config).  After a reset, a run retires exactly
        the counters a fresh machine would.
        """
        self.cond_predictor.reset()
        self.btb.reset()
        self.ras.reset()
        self.dcache.reset()
        self.instructions = 0
        self.cycles = 0.0
        self.branches = 0
        self.branch_misses = 0
        self.loads = 0
        self.stores = 0
        self.annotations = 0
        counts = self._class_counts
        for i in range(len(counts)):
            counts[i] = 0
        self._bulk_miss_carry = 0.0
        for descr in self._blocks:
            descr.count = 0
        for descr in self._fused:
            descr.count = 0

    # -- listener management ------------------------------------------------

    def add_annot_listener(self, listener):
        """Register a catch-all callable ``listener(tag, payload)``."""
        self._annot_listeners.append(listener)
        self._listener_epoch += 1

    def remove_annot_listener(self, listener):
        self._annot_listeners.remove(listener)
        self._listener_epoch += 1

    def add_tag_listener(self, tag, listener, run=None):
        """Register ``listener(tag, payload)`` for one annotation tag.

        Per-tag listeners skip the fan-out cost of catch-all listeners
        that ignore most tags (each PinTool component reacts to a small
        tag set); they run before catch-all listeners.

        ``run`` is an optional batched variant ``run(tag, payload, n)``
        equivalent to ``n`` successive ``listener`` calls.  When every
        listener for a tag has one (and no catch-all listener exists),
        :meth:`annot_run` notifies each once instead of ``n`` times.
        """
        self._tag_listeners.setdefault(tag, []).append(listener)
        if run is not None:
            self._listener_runs[(tag, listener)] = run
        self._recompute_runners(tag)
        self._listener_epoch += 1

    def remove_tag_listener(self, tag, listener):
        listeners = self._tag_listeners.get(tag)
        if listeners is not None:
            listeners.remove(listener)
            if not listeners:
                del self._tag_listeners[tag]
        self._listener_runs.pop((tag, listener), None)
        self._recompute_runners(tag)
        self._listener_epoch += 1

    def _recompute_runners(self, tag):
        listeners = self._tag_listeners.get(tag)
        runs = [self._listener_runs.get((tag, l)) for l in listeners or ()]
        if listeners and all(r is not None for r in runs):
            self._tag_runners[tag] = runs
        else:
            self._tag_runners.pop(tag, None)

    # -- block descriptors ---------------------------------------------------

    def block(self, mix):
        """Return this machine's memoized :class:`BlockDescr` for ``mix``."""
        descr = self._block_cache.get(mix)
        if descr is None:
            descr = BlockDescr(mix, self._stalls, self._inv_width)
            self._block_cache[mix] = descr
            self._blocks.append(descr)
        return descr

    def fused_block(self, mix, branches, miss_rate):
        """Memoized mix + bulk-branch pair descriptor (see exec_fused)."""
        key = (mix, branches, miss_rate)
        descr = self._fused_cache.get(key)
        if descr is None:
            descr = FusedDescr(
                self.block(mix), branches, miss_rate, self._inv_width)
            self._fused_cache[key] = descr
            self._fused.append(descr)
        return descr

    @property
    def class_counts(self):
        """Per-class retired-instruction histogram (descriptor counts folded)."""
        return fold_class_counts(self._class_counts, self._blocks, self._fused)

    # -- instruction-stream events -------------------------------------------

    def annot(self, tag, payload=None):
        """Execute one tagged NOP_ANNOT and notify listeners."""
        self.instructions += 1
        self.annotations += 1
        self._class_counts[_NOP_ANNOT] += 1
        self.cycles += self._inv_width
        listeners = self._tag_listeners.get(tag)
        if listeners is not None:
            for listener in listeners:
                listener(tag, payload)
        if self._annot_listeners:
            for listener in self._annot_listeners:
                listener(tag, payload)
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def annot_run(self, tag, n, payload=None):
        """Execute ``n`` consecutive identical annotations in one call.

        The generated JIT code collapses adjacent ``debug_merge_point``
        annotations (bytecodes whose trace ops all virtualized away)
        into one call; the loop body repeats the exact per-annotation
        sequence, so counters and listener behavior stay bit-identical.
        """
        inv_width = self._inv_width
        counts = self._class_counts
        tag_listeners = self._tag_listeners.get(tag)
        catch_all = self._annot_listeners
        max_instructions = self.max_instructions
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        if (not catch_all
                and (tag_listeners is None or runners is not None)
                and not (max_instructions
                         and self.instructions + n >= max_instructions)):
            # Batched fast path: integer counters update in bulk (exact);
            # the cycle accumulation keeps the per-annotation float-add
            # order, so the result is bit-identical to the loop below.
            # The limit precheck guarantees no per-annotation check
            # could have raised.
            self.instructions += n
            self.annotations += n
            counts[_NOP_ANNOT] += n
            # Unrolled accumulation: the same left-to-right sequence of
            # float additions as ``for _ in range(n)`` (so the rounding,
            # and therefore the result, is bit-identical), with 8x fewer
            # host loop iterations.  A single ``n * inv_width`` multiply
            # would NOT be equivalent: the loop's intermediate sums round
            # at binade crossings.  Small runs (the common collapsed
            # merge-point case) skip the loop machinery entirely.
            if n == 1:
                self.cycles += inv_width
            else:
                cycles = self.cycles
                i = n
                while i >= 8:
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    cycles += inv_width
                    i -= 8
                for _ in range(i):
                    cycles += inv_width
                self.cycles = cycles
            if runners:
                for run in runners:
                    run(tag, payload, n)
            return
        for _ in range(n):
            self.instructions += 1
            self.annotations += 1
            counts[_NOP_ANNOT] += 1
            self.cycles += inv_width
            if tag_listeners is not None:
                for listener in tag_listeners:
                    listener(tag, payload)
            if catch_all:
                for listener in catch_all:
                    listener(tag, payload)
            if max_instructions and self.instructions >= max_instructions:
                raise SimulationLimitReached(self.instructions)

    def exec_mix(self, mix):
        """Retire a bulk mix of instructions.

        ``br_bulk`` entries are conditional branches charged at the
        machine's calibrated bulk miss rate (see exec_bulk_branches).
        """
        total = 0
        extra = 0.0
        stalls = self._stalls
        counts = self._class_counts
        for klass, count in mix:
            total += count
            counts[klass] += count
            if klass == _BR_BULK:
                self.branches += count
                misses_exact = count * self.bulk_miss_rate \
                    + self._bulk_miss_carry
                misses = int(misses_exact)
                self._bulk_miss_carry = misses_exact - misses
                self.branch_misses += misses
                extra += misses * self.mispredict_penalty
                continue
            stall = stalls[klass]
            if stall:
                extra += stall * count
        self.instructions += total
        self.cycles += total * self._inv_width + extra
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def exec_block(self, b):
        """Retire a pre-lowered :class:`BlockDescr` in O(1).

        Bit-identical to ``exec_mix(b.mix)``: the descriptor precomputed
        the same ``total * inv_width`` product and the same left-to-right
        stall accumulation; only the bulk-miss carry (machine-global
        fractional state) is resolved at retire time.
        """
        b.count += 1
        self.instructions += b.n_insns
        bulk = b.bulk_count
        if bulk:
            self.branches += bulk
            misses_exact = bulk * self.bulk_miss_rate + self._bulk_miss_carry
            misses = int(misses_exact)
            self._bulk_miss_carry = misses_exact - misses
            self.branch_misses += misses
            self.cycles += b.insn_cycles + (
                b.stall_cycles + misses * self.mispredict_penalty)
        else:
            self.cycles += b.flat_cycles
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def exec_fused(self, f):
        """Retire a :class:`FusedDescr`: block + calibrated bulk branches.

        Bit-identical to ``exec_mix(f.block.mix)`` followed by
        ``exec_bulk_branches(f.branches, f.miss_rate)`` — including the
        two separate ``cycles +=`` operations and both limit checks.
        """
        self.exec_block(f.block)
        count = f.branches
        if count <= 0:
            return
        f.count += 1
        self.instructions += count
        self.branches += count
        misses_exact = count * f.miss_rate + self._bulk_miss_carry
        misses = int(misses_exact)
        self._bulk_miss_carry = misses_exact - misses
        self.branch_misses += misses
        self.cycles += (
            f.branch_cycles + misses * self.mispredict_penalty
        )
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    # -- fused dispatch kernels ------------------------------------------------
    #
    # dispatch_event / dispatch_event2 / dispatch_run / quick_run are
    # generated from the kernel spec (repro.backend.kernelspec) and
    # installed on the class right after its definition below.  The spec
    # emits the shared bulk-miss-carry, block-charge and inlined-BTB
    # fragments exactly once, so these reference kernels and the compiled
    # backend kernels cannot drift apart.

    def branch(self, pc, taken):
        """Retire one conditional branch with a real outcome."""
        self.instructions += 1
        self.branches += 1
        self._class_counts[_BR_COND] += 1
        self.cycles += self._inv_width
        if self._cond_predict(pc, taken):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def branch_block(self, pc, b):
        """Fused guard fall-through: ``branch(pc, False)`` + ``exec_block(b)``.

        The JIT backend emits one call for the not-taken guard branch and
        the basic block it opens; the body is the exact concatenation of
        the two event sequences, so counters stay bit-identical.
        """
        # branch(pc, False) — accumulates into locals, written back once
        insns_total = self.instructions + 1
        branches = self.branches + 1
        branch_misses = self.branch_misses
        self._class_counts[_BR_COND] += 1
        cycles = self.cycles + self._inv_width
        gshare = self._gshare
        if gshare is not None:
            # Inlined GsharePredictor.predict_and_update(pc, False).
            gmask = gshare.mask
            ghistory = gshare.history
            gtable = gshare.table
            gindex = (pc ^ ghistory) & gmask
            counter = gtable[gindex]
            if counter > 0:
                gtable[gindex] = counter - 1
            gshare.history = (ghistory << 1) & gmask
            if counter >= 2:
                branch_misses += 1
                cycles += self.mispredict_penalty
        elif self._cond_predict(pc, False):
            branch_misses += 1
            cycles += self.mispredict_penalty
        # exec_block(b)
        b.count += 1
        insns_total += b.n_insns
        bulk = b.bulk_count
        if bulk:
            branches += bulk
            misses_exact = bulk * self.bulk_miss_rate + self._bulk_miss_carry
            misses = int(misses_exact)
            self._bulk_miss_carry = misses_exact - misses
            branch_misses += misses
            cycles += b.insn_cycles + (
                b.stall_cycles + misses * self.mispredict_penalty)
        else:
            cycles += b.flat_cycles
        self.instructions = insns_total
        self.branches = branches
        self.branch_misses = branch_misses
        self.cycles = cycles
        if self.max_instructions and insns_total >= self.max_instructions:
            raise SimulationLimitReached(insns_total)

    def branch_block_annot_run(self, pc, b, tag, n):
        """Fused guard fall-through + collapsed annotation run.

        Compiled traces open a guard's not-taken block and — when every
        trace op of the following bytecodes virtualized away — retire
        their collapsed ``debug_merge_point`` annotations right after.
        One call concatenates the exact ``branch_block(pc, b)`` and
        ``annot_run(tag, n)`` event sequences: same float-add order,
        same listener and limit-check points, bit-identical counters.
        """
        inv_width = self._inv_width
        penalty = self.mispredict_penalty
        counts = self._class_counts
        # branch(pc, False) + exec_block(b), exactly as in branch_block
        insns_total = self.instructions + 1
        branches = self.branches + 1
        branch_misses = self.branch_misses
        counts[_BR_COND] += 1
        cycles = self.cycles + inv_width
        gshare = self._gshare
        if gshare is not None:
            # Inlined GsharePredictor.predict_and_update(pc, False).
            gmask = gshare.mask
            ghistory = gshare.history
            gtable = gshare.table
            gindex = (pc ^ ghistory) & gmask
            counter = gtable[gindex]
            if counter > 0:
                gtable[gindex] = counter - 1
            gshare.history = (ghistory << 1) & gmask
            if counter >= 2:
                branch_misses += 1
                cycles += penalty
        elif self._cond_predict(pc, False):
            branch_misses += 1
            cycles += penalty
        b.count += 1
        insns_total += b.n_insns
        bulk = b.bulk_count
        if bulk:
            branches += bulk
            misses_exact = bulk * self.bulk_miss_rate + self._bulk_miss_carry
            misses = int(misses_exact)
            self._bulk_miss_carry = misses_exact - misses
            branch_misses += misses
            cycles += b.insn_cycles + (
                b.stall_cycles + misses * penalty)
        else:
            cycles += b.flat_cycles
        self.instructions = insns_total
        self.branches = branches
        self.branch_misses = branch_misses
        self.cycles = cycles
        max_instructions = self.max_instructions
        if max_instructions and insns_total >= max_instructions:
            raise SimulationLimitReached(insns_total)
        # annot_run(tag, n) — the batched fast path inlined; listener
        # and limit corner cases delegate to the real method, which
        # replays exact per-annotation semantics.
        tag_listeners = self._tag_listeners.get(tag)
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        if (self._annot_listeners
                or (tag_listeners is not None and runners is None)
                or (max_instructions
                    and insns_total + n >= max_instructions)):
            self.annot_run(tag, n)
            return
        self.instructions = insns_total + n
        self.annotations += n
        counts[_NOP_ANNOT] += n
        if n == 1:
            cycles += inv_width
        else:
            i = n
            while i >= 8:
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                i -= 8
            for _ in range(i):
                cycles += inv_width
        self.cycles = cycles
        if runners:
            for run in runners:
                run(tag, None, n)

    def indirect(self, pc, target):
        """Retire one indirect jump (e.g. interpreter dispatch)."""
        self.instructions += 1
        self.branches += 1
        self._class_counts[_BR_IND] += 1
        self.cycles += self._inv_width
        if self._btb_predict(pc, target):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def call(self, pc):
        """Retire one direct call; pushes the return address on the RAS."""
        self.instructions += 1
        self.branches += 1
        self._class_counts[_CALL] += 1
        self.cycles += self._inv_width
        self._ras_push(pc + 1)

    def ret(self, pc):
        """Retire one return; mispredicts when the RAS has been clobbered."""
        self.instructions += 1
        self.branches += 1
        self._class_counts[_RET] += 1
        self.cycles += self._inv_width
        if self._ras_pop(pc + 1):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def exec_program(self, prog, operands=None):
        """Replay a pre-compiled :class:`~repro.backend.eventprog.EventProgram`.

        The reference implementation simply replays the program's events
        through this machine's public kernels, one by one — so limit
        raises, listener notification, and float accumulation order are
        the per-call semantics by definition.  The compiled backends
        override this with resident replayers (thunk lists on ``fast``,
        one ``rt_exec_program`` FFI call on ``native``) that the
        eventprog equivalence suite pins bit-identical to this path.
        """
        _eventprog.replay(self, prog, operands)

    def eventprog_operands(self, n_slots):
        """Allocate an operand buffer for :meth:`exec_program` callers.

        Dynamic load/store addresses are written into this buffer by
        the generated driver code before each ``exec_program`` call.
        The native backend overrides this with a cffi ``long long[]``
        that ``rt_exec_program`` indexes directly.
        """
        return [0] * n_slots

    def exec_bulk_branches(self, count, miss_rate):
        """Retire ``count`` loop-style branches with a calibrated miss rate.

        Bulk code (GC sweeps, AOT-compiled runtime functions) would cost
        one predictor call per branch; since its branches are regular
        loop branches, we charge an aggregate miss rate instead.  The
        fractional remainder is carried so long runs are exact.
        """
        if count <= 0:
            return
        self.instructions += count
        self.branches += count
        self._class_counts[_BR_COND] += count
        misses_exact = count * miss_rate + self._bulk_miss_carry
        misses = int(misses_exact)
        self._bulk_miss_carry = misses_exact - misses
        self.branch_misses += misses
        self.cycles += (
            count * self._inv_width + misses * self.mispredict_penalty
        )
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def load(self, addr):
        """Retire one load with a concrete (simulated-heap) address."""
        self.instructions += 1
        self.loads += 1
        self._class_counts[_LOAD] += 1
        self.cycles += self._load_cost
        line = addr >> self._l1_shift
        ways = self._l1_sets[line & self._l1_mask]
        if ways and ways[0] == line:
            self._l1.hits += 1  # MRU hit: zero penalty, LRU unchanged
        else:
            self.cycles += self._dc_access(addr)

    def store(self, addr):
        """Retire one store with a concrete (simulated-heap) address.

        Write-allocate misses are largely hidden by the store buffer, so
        only a fraction of the miss penalty reaches the critical path.
        """
        self.instructions += 1
        self.stores += 1
        self._class_counts[_STORE] += 1
        self.cycles += self._store_cost
        line = addr >> self._l1_shift
        ways = self._l1_sets[line & self._l1_mask]
        if ways and ways[0] == line:
            self._l1.hits += 1  # MRU hit: zero penalty, LRU unchanged
        else:
            self.cycles += 0.3 * self._dc_access(addr)

    def load_annot_run(self, addr, tag, n):
        """Fused ``load(addr)`` + ``annot_run(tag, n)``.

        Same pattern (and same equivalence argument) as
        :meth:`branch_block_annot_run`: the exact concatenation of both
        event sequences in one Python call.  ``load`` performs no limit
        check, so the annotation-run precheck alone routes limit
        crossings to the per-primitive path.
        """
        counts = self._class_counts
        self.loads += 1
        counts[_LOAD] += 1
        cycles = self.cycles + self._load_cost
        line = addr >> self._l1_shift
        ways = self._l1_sets[line & self._l1_mask]
        if ways and ways[0] == line:
            self._l1.hits += 1  # MRU hit: zero penalty, LRU unchanged
        else:
            cycles += self._dc_access(addr)
        insns_total = self.instructions + 1
        tag_listeners = self._tag_listeners.get(tag)
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = self.max_instructions
        if (self._annot_listeners
                or (tag_listeners is not None and runners is None)
                or (max_instructions
                    and insns_total + n >= max_instructions)):
            self.instructions = insns_total
            self.cycles = cycles
            self.annot_run(tag, n)
            return
        self.instructions = insns_total + n
        self.annotations += n
        counts[_NOP_ANNOT] += n
        inv_width = self._inv_width
        if n == 1:
            cycles += inv_width
        else:
            i = n
            while i >= 8:
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                i -= 8
            for _ in range(i):
                cycles += inv_width
        self.cycles = cycles
        if runners:
            for run in runners:
                run(tag, None, n)

    def store_annot_run(self, addr, tag, n):
        """Fused ``store(addr)`` + ``annot_run(tag, n)`` (see
        :meth:`load_annot_run`)."""
        counts = self._class_counts
        self.stores += 1
        counts[_STORE] += 1
        cycles = self.cycles + self._store_cost
        line = addr >> self._l1_shift
        ways = self._l1_sets[line & self._l1_mask]
        if ways and ways[0] == line:
            self._l1.hits += 1  # MRU hit: zero penalty, LRU unchanged
        else:
            cycles += 0.3 * self._dc_access(addr)
        insns_total = self.instructions + 1
        tag_listeners = self._tag_listeners.get(tag)
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = self.max_instructions
        if (self._annot_listeners
                or (tag_listeners is not None and runners is None)
                or (max_instructions
                    and insns_total + n >= max_instructions)):
            self.instructions = insns_total
            self.cycles = cycles
            self.annot_run(tag, n)
            return
        self.instructions = insns_total + n
        self.annotations += n
        counts[_NOP_ANNOT] += n
        inv_width = self._inv_width
        if n == 1:
            cycles += inv_width
        else:
            i = n
            while i >= 8:
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                cycles += inv_width
                i -= 8
            for _ in range(i):
                cycles += inv_width
        self.cycles = cycles
        if runners:
            for run in runners:
                run(tag, None, n)

    # -- PAPI-style counter access --------------------------------------------

    def counters(self):
        """Snapshot the counters (the paper's PAPI-on-annotation reads)."""
        return CounterSnapshot(
            instructions=self.instructions,
            cycles=self.cycles,
            branches=self.branches,
            branch_misses=self.branch_misses,
            loads=self.loads,
            stores=self.stores,
            l1d_misses=self.dcache.l1.misses,
            annotations=self.annotations,
        )

    @property
    def ipc(self):
        """Overall instructions per cycle so far."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def branch_mpki(self):
        """Branch misses per 1000 instructions (the paper's M column)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.branch_misses / self.instructions


# Install the generated reference dispatch kernels.  They are compiled
# from the same fragment emitters that build the fast backend's
# specialized kernels and that the native backend mirrors as C macros,
# so the three implementations share one source of truth.
for _name, _fn in _kernelspec.build_reference_methods(
        SimulationLimitReached).items():
    setattr(Machine, _name, _fn)
del _name, _fn


def delta(after, before):
    """Counter delta between two snapshots (windowed PAPI read)."""
    return CounterSnapshot(*(a - b for a, b in zip(after, before)))


def window_ipc(window):
    return window.instructions / window.cycles if window.cycles else 0.0


def window_branch_miss_rate(window):
    return window.branch_misses / window.branches if window.branches else 0.0


def window_branches_per_insn(window):
    if not window.instructions:
        return 0.0
    return window.branches / window.instructions
