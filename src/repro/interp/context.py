"""The VM context: one simulated process.

Bundles the machine (timing + annotation target), the GC, the trace
registry, the jitlog, and the LLOps operation layer.  Each benchmark run
constructs one fresh context.
"""

from repro import telemetry
from repro.core import tags
from repro.gc.heap import SimGC
from repro.jit.jitlog import JitLog
from repro.jit.trace import TraceRegistry
from repro.uarch.machine import Machine


class VMContext(object):
    """Everything one simulated RPython-style VM process shares."""

    def __init__(self, config, predictor="gshare", telemetry_label=None):
        self.config = config
        self.machine = Machine(config, predictor=predictor)
        # Live observability session (None while telemetry is disabled;
        # every layer's emit site is then a no-op attribute check).
        if telemetry.BUS is not None:
            from repro.telemetry.vmhook import VMTelemetry

            self.telemetry = VMTelemetry(
                self.machine, label=telemetry_label)
        else:
            self.telemetry = None
        self.gc = SimGC(self.machine, config.gc)
        self.gc.telemetry = self.telemetry
        self.registry = TraceRegistry()
        self.jitlog = JitLog() if config.jit.jitlog else None
        self.tracer = None  # active MetaTracer while recording
        # Imported here to avoid a cycle (llops needs the context type).
        from repro.interp.llops import LLOps

        self.llops = LLOps(self)

    # -- convenience charging helpers -----------------------------------------

    def charge(self, mix):
        self.machine.exec_mix(mix)

    def charge_branches(self, count, miss_rate):
        self.machine.exec_bulk_branches(count, miss_rate)

    def annot(self, tag, payload=None):
        self.machine.annot(tag, payload)

    def vm_start(self):
        self.machine.annot(tags.VM_START)

    def vm_stop(self):
        self.machine.annot(tags.VM_STOP)
