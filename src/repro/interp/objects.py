"""Framework-level object model primitives.

Guest VMs define their boxed objects as subclasses of :class:`W_Root`.
Instances are real Python objects; the framework adds a simulated heap
address (for the cache model) and RPython-style class annotations:

* ``_immutable_fields_`` — fields the JIT may treat as pure loads,
* ``_size_`` — simulated allocation size in bytes.

:class:`LLArray` is the framework's fixed-size array (RPython's GcArray):
guest list strategies build on it.
"""


class W_Root(object):
    """Base class of all boxed guest values."""

    _immutable_fields_ = ()
    _size_ = 32
    _addr = 0  # overwritten per instance at allocation time

    def __repr__(self):
        return "<%s>" % type(self).__name__


class LLArray(object):
    """A fixed-length array of values with a simulated heap address."""

    __slots__ = ("items", "_addr")
    _immutable_fields_ = ()

    def __init__(self, items, addr=0):
        self.items = items
        self._addr = addr

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        return "<LLArray n=%d>" % len(self.items)


def sizeof_instance(cls):
    return getattr(cls, "_size_", 32)


def sizeof_array(n_items):
    return 16 + 8 * n_items


class TBox(object):
    """Tracing-mode handle: a concrete value plus its IR value.

    During trace recording every *red* (runtime-varying) value the
    interpreter holds is a TBox; raw Python values are trace constants.
    Interpreter code must treat handles as opaque and route every
    operation through LLOps.  ``owner`` is the tracer that created the
    box: a box from another (finished/abandoned) recording is *stale* —
    direct mode just unwraps it, and an active tracer refuses it
    (aborting the trace) rather than mislinking data flow.
    """

    __slots__ = ("value", "ir", "owner")

    def __init__(self, value, ir_value, owner=None):
        self.value = value
        self.ir = ir_value
        self.owner = owner

    def __repr__(self):
        return "TBox(%r)" % (self.value,)


def concrete(handle):
    """The concrete value behind a handle (TBox or raw)."""
    if type(handle) is TBox:
        return handle.value
    return handle


def unwrap_frame(frame):
    """Strip TBoxes from a frame's locals and stack (end of tracing)."""
    frame.locals = [concrete(v) for v in frame.locals]
    frame.stack = [concrete(v) for v in frame.stack]
