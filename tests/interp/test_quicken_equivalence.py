"""Quickening equivalence: bit-identical results with the layer on or off.

The quickening layer — superinstruction runs batched through
``Machine.quick_run``, host-side inline caches for globals, attributes
and method lookup, and fused cost charging — must not change simulation
results AT ALL.  Every counter (including the float ``cycles``
accumulator, compared by ``==`` and by ``repr`` so not even the last
mantissa bit may differ), every phase window, the jitlog event stream,
and guest stdout have to match what the unquickened dispatch loops
produce, on real benchmarks and on generated difftest programs alike.

Style of ``tests/uarch/test_fused_equivalence.py``: run the same
workload twice with only ``config.quicken`` flipped, then compare the
full measurement set field by field.
"""

import pytest

from repro.benchprogs import registry
from repro.difftest import oracle
from repro.difftest.generator import generate_program
from repro.harness import runner
from repro.uarch.machine import Machine


def _measure(program_name, language, vm_kind, quicken):
    # run_program pins the host cyclic collector around the simulation,
    # so SimGC's weakref survivor sampling — and with it every counter —
    # is a pure function of the guest workload, not of what the process
    # allocated before this run.  Without that, a quickened and an
    # unquickened run (which allocate different *host* objects) could
    # see sampled guest objects die at different points.
    program = (registry.py_program(program_name) if language == "python"
               else registry.rkt_program(program_name))
    result = runner.run_program(program, vm_kind, use_cache=False,
                                quicken=quicken)
    phases = tuple(
        (w.instructions, w.cycles, w.branches, w.branch_misses)
        for w in result.phase_windows) if result.phase_windows else None
    jitlog = (repr(result.jitlog_obj.events)
              if result.jitlog_obj is not None else None)
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cycles_repr": repr(result.cycles),
        "ipc": repr(result.ipc),
        "mpki": repr(result.mpki),
        "truncated": result.truncated,
        "bytecodes": result.bytecodes,
        "output": result.output,
        "phase_windows": phases,
        "phase_breakdown": tuple(sorted(result.phase_breakdown.items())),
        "jitlog": jitlog,
    }


@pytest.mark.parametrize("program,language,vm_kind", [
    ("richards", "python", "pypy"),
    ("richards", "python", "pypy_nojit"),
    ("crypto_pyaes", "python", "cpython"),
    ("nbody", "python", "pypy"),
    ("fannkuch", "racket", "pycket"),
    ("fannkuch", "racket", "racket"),
])
def test_benchmarks_bit_identical(program, language, vm_kind):
    on = _measure(program, language, vm_kind, quicken=True)
    off = _measure(program, language, vm_kind, quicken=False)
    for field in on:
        assert on[field] == off[field], field


def test_quickening_actually_engages(monkeypatch):
    """The quickened run must retire real superinstruction batches —
    otherwise the equivalence above is vacuous."""
    # Pin the reference backend: the compiled backends install quick_run
    # as a per-instance kernel, which would bypass the class-level
    # monkeypatch this test counts with.  Pin the threaded-code tier
    # off too — tier-1 dispatch batches through quick_run as well,
    # which would break the quicken-off == 0 claim below.
    monkeypatch.setenv("REPRO_BACKEND", "python")
    monkeypatch.setenv("REPRO_TIER1", "0")
    calls = [0]
    orig = Machine.quick_run

    def counting(self, tag, b, items, n_insns):
        calls[0] += 1
        return orig(self, tag, b, items, n_insns)

    monkeypatch.setattr(Machine, "quick_run", counting)
    _measure("richards", "python", "pypy_nojit", quicken=True)
    assert calls[0] > 100  # a real workload, not a stray call

    calls[0] = 0
    _measure("richards", "python", "pypy_nojit", quicken=False)
    assert calls[0] == 0  # the knob really disables the layer


@pytest.mark.parametrize("seed", range(9100, 9120))
def test_generated_programs_bit_identical(seed):
    """Difftest-generated TinyPy programs: direct-mode interp runs with
    quickening on vs off must agree on every machine counter."""
    source = generate_program(seed)
    on = oracle.run_interp(source, jit=False, quicken=True)
    off = oracle.run_interp(source, jit=False, quicken=False,
                            name="quicken-off")
    assert on.output == off.output
    assert (on.error is None) == (off.error is None)
    assert on.truncated == off.truncated
    for field in ("instructions", "cycles", "branches", "branch_misses",
                  "loads", "stores", "annotations"):
        a = getattr(on.machine, field)
        b = getattr(off.machine, field)
        assert a == b, field
        assert repr(a) == repr(b), field
    assert tuple(on.machine.class_counts) == tuple(off.machine.class_counts)
    assert on.tool.bcrate.bytecodes == off.tool.bcrate.bytecodes
