"""Unit tests for executor helpers: exit plans, virtual materialization."""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.objects import W_Root
from repro.jit import ir
from repro.jit.executor import (
    _exit_plan,
    _materialize,
    _resume_value,
    _snapshot_to_frames,
)
from repro.jit.resume import FrameState, Snapshot, VirtualSpec
from repro.jit.trace import InputArg


class W_Thing(W_Root):
    _size_ = 24


def make_ctx():
    return VMContext(SystemConfig())


def test_exit_plan_unique_non_const():
    a = InputArg()
    b = InputArg()
    snapshot = Snapshot((FrameState(
        "code", 3, (a, ir.Const(5), b, a), ()),))
    plan = _exit_plan(snapshot)
    assert plan == [a, b]


def test_exit_plan_includes_virtual_fields():
    a = InputArg()
    descr = ir.FieldDescr.get(W_Thing, "payload")
    spec = VirtualSpec(W_Thing, {descr: a}, 24)
    snapshot = Snapshot((FrameState("code", 0, (spec,), ()),))
    plan = _exit_plan(snapshot)
    assert plan == [a]


def test_exit_plan_handles_shared_and_cyclic_specs():
    descr_self = ir.FieldDescr.get(W_Thing, "self_ref")
    spec = VirtualSpec(W_Thing, {}, 24)
    spec.fields[descr_self] = spec  # cycle
    snapshot = Snapshot((FrameState("code", 0, (spec, spec), ()),))
    assert _exit_plan(snapshot) == []


def test_materialize_builds_object():
    ctx = make_ctx()
    a = InputArg()
    descr = ir.FieldDescr.get(W_Thing, "value_field")
    spec = VirtualSpec(W_Thing, {descr: a}, 24)
    obj = _materialize(ctx, spec, {a: 42}, {})
    assert isinstance(obj, W_Thing)
    assert obj.value_field == 42
    assert obj._addr != 0


def test_materialize_cyclic():
    ctx = make_ctx()
    descr = ir.FieldDescr.get(W_Thing, "next_ref")
    spec = VirtualSpec(W_Thing, {}, 24)
    spec.fields[descr] = spec
    obj = _materialize(ctx, spec, {}, {})
    assert obj.next_ref is obj


def test_materialize_shared_identity():
    ctx = make_ctx()
    descr_left = ir.FieldDescr.get(W_Thing, "left")
    descr_right = ir.FieldDescr.get(W_Thing, "right")
    inner = VirtualSpec(W_Thing, {}, 24)
    outer = VirtualSpec(W_Thing, {descr_left: inner,
                                  descr_right: inner}, 24)
    obj = _materialize(ctx, outer, {}, {})
    assert obj.left is obj.right


def test_resume_value_kinds():
    ctx = make_ctx()
    a = InputArg()
    assert _resume_value(ctx, ir.Const("k"), {}, {}) == "k"
    assert _resume_value(ctx, a, {a: 7}, {}) == 7


def test_snapshot_to_frames():
    ctx = make_ctx()
    a = InputArg()
    snapshot = Snapshot((
        FrameState("outer", 4, (a,), (ir.Const(None),), extra="X"),
        FrameState("inner", 9, (ir.Const(1),), (), extra="Y"),
    ))
    frames, n_values = _snapshot_to_frames(ctx, snapshot, {a: "val"})
    assert n_values == 3
    assert frames[0] == ("outer", 4, ["val"], [None], "X")
    assert frames[1] == ("inner", 9, [1], [], "Y")
