# sympy_str: symbolic expression manipulation — build polynomial
# expression trees, expand products, and render to strings. The paper's
# "very branchy application, many equally-used traces" profile.
N = 40


class Expr:
    pass


class Num(Expr):
    def __init__(self, value):
        self.value = value

    def kind(self):
        return "num"

    def to_str(self):
        return str(self.value)


class Sym(Expr):
    def __init__(self, name):
        self.name = name

    def kind(self):
        return "sym"

    def to_str(self):
        return self.name


class Add(Expr):
    def __init__(self, terms):
        self.terms = terms

    def kind(self):
        return "add"

    def to_str(self):
        parts = []
        for t in self.terms:
            parts.append(t.to_str())
        return "(" + " + ".join(parts) + ")"


class Mul(Expr):
    def __init__(self, factors):
        self.factors = factors

    def kind(self):
        return "mul"

    def to_str(self):
        parts = []
        for f in self.factors:
            parts.append(f.to_str())
        return "(" + "*".join(parts) + ")"


def expand(expr):
    """Distribute products over sums (one level at a time, recursively)."""
    k = expr.kind()
    if k == "num" or k == "sym":
        return expr
    if k == "add":
        new_terms = []
        for t in expr.terms:
            e = expand(t)
            if e.kind() == "add":
                for inner in e.terms:
                    new_terms.append(inner)
            else:
                new_terms.append(e)
        return Add(new_terms)
    # mul: expand factors, then distribute the first Add found.
    factors = []
    for f in expr.factors:
        factors.append(expand(f))
    for i in range(len(factors)):
        if factors[i].kind() == "add":
            others = factors[0:i] + factors[i + 1:len(factors)]
            terms = []
            for t in factors[i].terms:
                terms.append(expand(Mul([t] + others)))
            return Add(terms)
    return Mul(factors)


def simplify_nums(expr):
    """Fold numeric factors/terms."""
    k = expr.kind()
    if k == "add":
        total = 0
        rest = []
        for t in expr.terms:
            s = simplify_nums(t)
            if s.kind() == "num":
                total += s.value
            else:
                rest.append(s)
        if total != 0:
            rest.append(Num(total))
        if len(rest) == 1:
            return rest[0]
        return Add(rest)
    if k == "mul":
        product = 1
        rest = []
        for f in expr.factors:
            s = simplify_nums(f)
            if s.kind() == "num":
                product *= s.value
            else:
                rest.append(s)
        if product == 0:
            return Num(0)
        if product != 1:
            rest = [Num(product)] + rest
        if len(rest) == 1:
            return rest[0]
        return Mul(rest)
    return expr


def build_poly(degree, var):
    # (x + 1)(x + 2)...(x + degree)
    factors = []
    for i in range(1, degree + 1):
        factors.append(Add([Sym(var), Num(i)]))
    return Mul(factors)


def run_sympy_str(iterations):
    checksum = 0
    for it in range(iterations):
        poly = build_poly(2 + it % 3, "x")
        expanded = simplify_nums(expand(poly))
        text = expanded.to_str()
        checksum = (checksum + len(text)) % 1000000007
        for ch in text[0:16]:
            checksum = (checksum * 31 + ord(ch)) % 1000000007
    print("sympy_str", checksum)


run_sympy_str(N)
