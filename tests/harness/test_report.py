import os

from repro.harness import report


def test_render_table_alignment():
    text = report.render_table(
        ["name", "value"], [("a", 1), ("long-name", 22)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-name" in text
    assert all(len(line) >= 4 for line in lines[1:])


def test_render_bars():
    text = report.render_bars([("x", 1.0), ("y", 0.5)], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_render_bars_empty():
    assert report.render_bars([], title="nothing") == "nothing"


def test_render_stacked():
    text = report.render_stacked(
        [("row", {"a": 0.5, "b": 0.5})], ["a", "b"], width=10)
    assert "legend" in text
    assert "#####" in text


def test_render_series():
    points = [(0, 0.0), (50, 5.0), (100, 10.0)]
    text = report.render_series(points, width=20, height=5, title="S")
    assert text.startswith("S")
    assert "*" in text


def test_render_series_empty():
    assert report.render_series([], title="S") == "S"


def test_render_table_no_title_and_ragged_cells():
    text = report.render_table(["a", "bb"], [(1, 2)])
    lines = text.splitlines()
    assert len(lines) == 3  # header, rule, one row — no title line
    assert lines[1].startswith("-")


def test_render_bars_zero_values():
    # An all-zero series must not divide by zero.
    text = report.render_bars([("x", 0.0), ("y", 0.0)])
    assert "#" not in text


def test_render_bars_custom_format():
    text = report.render_bars([("x", 2.0)], fmt="%.0f")
    assert " 2 " in text or text.rstrip().endswith("2") or "2 #" in text


def test_render_stacked_missing_columns_default_to_zero():
    text = report.render_stacked([("r", {"a": 1.0})], ["a", "b"], width=10)
    assert "=" not in text.splitlines()[-1].split("|", 1)[1]


def test_render_stacked_empty_rows():
    text = report.render_stacked([], ["a"], title="T")
    assert text.splitlines()[0] == "T"
    assert "legend" in text


def test_render_series_flat_line():
    # Degenerate ranges (all x equal, all y equal) must not crash.
    text = report.render_series([(5, 1.0), (5, 1.0)], width=10, height=4)
    assert "*" in text


def test_results_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
    path = report.results_dir()
    assert path == str(tmp_path / "sub")
    assert os.path.isdir(path)


def test_save_text_preserves_existing_newline(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = report.save_text("nl.txt", "line\n")
    with open(path) as handle:
        assert handle.read() == "line\n"


def test_save_text_and_csv(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = report.save_text("out.txt", "hello")
    assert os.path.exists(path)
    with open(path) as handle:
        assert handle.read() == "hello\n"
    csv_path = report.save_csv("out.csv", ["a", "b"], [(1, 2), (3, 4)])
    with open(csv_path) as handle:
        assert handle.read() == "a,b\n1,2\n3,4\n"
