"""Microarchitecture model: predictors, caches, timing machine."""
