"""Cross-validate the jitlog's aggregated per-node execution counts
against Pin-style per-node annotation interception (the paper's two
measurement paths for JIT-IR statistics)."""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.jit.executor import sync_exec_counts
from repro.pintool.tool import PinTool
from repro.pylang.interp import PyVM

SOURCE = '''
total = 0
for i in range(400):
    if i % 5 == 0:
        total += i * 2
    else:
        total += 1
print(total)
'''


def test_annotation_counts_match_jitlog_counts():
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 7
    cfg.jit.bridge_threshold = 3
    cfg.annotate_ir_nodes = True
    ctx = VMContext(cfg)
    tool = PinTool(ctx.machine, profile_ir_nodes=True)
    vm = PyVM(ctx)
    vm.run_source(SOURCE)
    tool.finish()
    assert ctx.registry.traces
    checked = 0
    for trace in ctx.registry.traces:
        sync_exec_counts(trace)
        for i, op in enumerate(trace.ops):
            if op.name == "label":
                continue
            observed = tool.irprofile.count_for(trace.trace_id, i)
            aggregated = trace.op_exec_counts[i]
            # Block-aggregated counts may overshoot by at most one
            # execution (an iteration cut short by a guard exit counts
            # the whole block).
            assert abs(observed - aggregated) <= trace.executions, (
                trace.trace_id, i, op.name, observed, aggregated)
            checked += 1
    assert checked > 20


def test_irprofiler_ignores_unrelated_tags():
    from repro.core import tags
    from repro.pintool.irprofile import IrNodeProfiler

    profiler = IrNodeProfiler()
    profiler.on_annot(tags.DISPATCH, None)
    profiler.on_annot(tags.IR_NODE, (1, 2))
    profiler.on_annot(tags.IR_NODE, (1, 2))
    profiler.on_annot(tags.TRACE_ITER, 1)
    assert profiler.count_for(1, 2) == 2
    assert profiler.count_for(9, 9) == 0
    assert profiler.trace_iterations[1] == 1
