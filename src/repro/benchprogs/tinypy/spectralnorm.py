# spectralnorm (CLBG): power iteration approximating the spectral norm
# of an infinite matrix. Pure float arithmetic with nested loops.
N = 60


def eval_a(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0)


def eval_a_times_u(u, out):
    n = len(u)
    for i in range(n):
        total = 0.0
        for j in range(n):
            total += eval_a(i, j) * u[j]
        out[i] = total


def eval_at_times_u(u, out):
    n = len(u)
    for i in range(n):
        total = 0.0
        for j in range(n):
            total += eval_a(j, i) * u[j]
        out[i] = total


def eval_ata_times_u(u, out, tmp):
    eval_a_times_u(u, tmp)
    eval_at_times_u(tmp, out)


def run_spectralnorm(n):
    u = [1.0] * n
    v = [0.0] * n
    tmp = [0.0] * n
    for i in range(10):
        eval_ata_times_u(u, v, tmp)
        eval_ata_times_u(v, u, tmp)
    vbv = 0.0
    vv = 0.0
    for i in range(n):
        vbv += u[i] * v[i]
        vv += v[i] * v[i]
    result = (vbv / vv) ** 0.5
    print("spectralnorm %.9f" % result)


run_spectralnorm(N)
