"""rordereddict: RPython's ordered dictionary, from scratch.

A real open-addressing hash table in the style of RPython's (and
CPython 3.6+'s) compact ordered dict: a sparse ``indexes`` probe table
pointing into a dense ``entries`` list.  The lookup routine is the
paper's single most prominent Table III entry point
(``rordereddict.ll_call_lookup_function``), so lookups here are genuine
probe loops with per-probe costs.

Keys are raw VM-level values (strings, ints, or boxed objects compared
by a key-strategy pair of hash/eq functions supplied by the guest VM).
"""

from repro.interp.aot import aot
from repro.isa import insns
from repro.rlib.costutil import charge_loop

_FREE = -1
_DELETED = -2

_PROBE_MIX = insns.mix(alu=5, load=3, br_bulk=2)
_PERTURB_SHIFT = 5


class RDict(object):
    """The dictionary payload object stored inside guest dict boxes."""

    __slots__ = ("indexes", "entries", "used", "filled", "hash_fn", "eq_fn",
                 "_addr")
    _size_ = 96

    def __init__(self, hash_fn=None, eq_fn=None, size=8):
        self.indexes = [_FREE] * size
        self.entries = []  # (hash, key, value) triples; None = deleted
        self.used = 0
        self.filled = 0
        self.hash_fn = hash_fn
        self.eq_fn = eq_fn

    def _hash(self, key):
        if self.hash_fn is not None:
            return self.hash_fn(key)
        return hash(key)

    def _eq(self, a, b):
        if self.eq_fn is not None:
            return self.eq_fn(a, b)
        return a == b

    def __len__(self):
        return self.used


def _lookup(ctx, d, key, key_hash):
    """Core probe loop; returns (slot, entry_index). entry_index is -1
    when absent; slot is where an insert should go."""
    mask = len(d.indexes) - 1
    slot = key_hash & mask
    perturb = key_hash
    probes = 0
    first_deleted = -1
    while True:
        probes += 1
        index = d.indexes[slot]
        if index == _FREE:
            charge_loop(ctx, probes, _PROBE_MIX)
            if first_deleted >= 0:
                slot = first_deleted
            return slot, -1
        if index == _DELETED:
            if first_deleted < 0:
                first_deleted = slot
        else:
            entry = d.entries[index]
            if entry[0] == key_hash and d._eq(entry[1], key):
                charge_loop(ctx, probes, _PROBE_MIX)
                return slot, index
        perturb >>= _PERTURB_SHIFT
        slot = (slot * 5 + perturb + 1) & mask


def _resize(ctx, d):
    old_entries = [e for e in d.entries if e is not None]
    new_size = max(8, d.used * 4)
    size = 8
    while size < new_size:
        size *= 2
    d.indexes = [_FREE] * size
    d.entries = []
    d.used = 0
    d.filled = 0
    charge_loop(ctx, size, insns.mix(store=1, alu=1))
    for key_hash, key, value in old_entries:
        slot, index = _lookup(ctx, d, key, key_hash)
        d.indexes[slot] = len(d.entries)
        d.entries.append((key_hash, key, value))
        d.used += 1
        d.filled += 1


@aot("rordereddict.ll_call_lookup_function", "R", "readonly")
def ll_dict_lookup(ctx, d, key):
    """Return the stored value or None if absent."""
    key_hash = d._hash(key)
    _slot, index = _lookup(ctx, d, key, key_hash)
    if index < 0:
        return None
    return d.entries[index][2]


@aot("rordereddict.ll_dict_contains", "R", "readonly")
def ll_dict_contains(ctx, d, key):
    key_hash = d._hash(key)
    _slot, index = _lookup(ctx, d, key, key_hash)
    return index >= 0


@aot("rordereddict.ll_dict_setitem", "R", "idempotent")
def ll_dict_setitem(ctx, d, key, value):
    key_hash = d._hash(key)
    slot, index = _lookup(ctx, d, key, key_hash)
    if index >= 0:
        d.entries[index] = (key_hash, key, value)
        ctx.charge(insns.mix(store=2, alu=1))
        return None
    d.indexes[slot] = len(d.entries)
    d.entries.append((key_hash, key, value))
    d.used += 1
    d.filled += 1
    ctx.charge(insns.mix(store=3, alu=2))
    if d.filled * 3 >= len(d.indexes) * 2:
        _resize(ctx, d)
    return None


@aot("rordereddict.ll_dict_delitem", "R", "any")
def ll_dict_delitem(ctx, d, key):
    """Delete key; returns True if it was present."""
    key_hash = d._hash(key)
    slot, index = _lookup(ctx, d, key, key_hash)
    if index < 0:
        return False
    d.indexes[slot] = _DELETED
    d.entries[index] = None
    d.used -= 1
    ctx.charge(insns.mix(store=2, alu=2))
    return True


@aot("rordereddict.ll_dict_keys", "R", "readonly")
def ll_dict_keys(ctx, d):
    charge_loop(ctx, max(1, len(d.entries)), insns.mix(load=2, store=1))
    return [e[1] for e in d.entries if e is not None]


@aot("rordereddict.ll_dict_values", "R", "readonly")
def ll_dict_values(ctx, d):
    charge_loop(ctx, max(1, len(d.entries)), insns.mix(load=2, store=1))
    return [e[2] for e in d.entries if e is not None]


@aot("rordereddict.ll_dict_items", "R", "readonly")
def ll_dict_items(ctx, d):
    charge_loop(ctx, max(1, len(d.entries)), insns.mix(load=3, store=2))
    return [(e[1], e[2]) for e in d.entries if e is not None]


@aot("rordereddict.ll_dict_len", "R", "readonly")
def ll_dict_len(ctx, d):
    ctx.charge(insns.mix(load=1))
    return d.used


@aot("rordereddict.ll_dict_clear", "R", "any")
def ll_dict_clear(ctx, d):
    charge_loop(ctx, max(1, len(d.indexes)), insns.mix(store=1))
    d.indexes = [_FREE] * 8
    d.entries = []
    d.used = 0
    d.filled = 0
    return None
