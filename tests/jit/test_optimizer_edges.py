"""Optimizer edge-case regressions, cross-checked by translation
validation.

Three corners that earlier refactors nearly broke and that the generic
unit tests in test_optimizer.py do not pin down:

* guard strengthening on *bridge entry* — dedup facts must be
  established from scratch on the straight (no-label) path,
* a virtual escaping through a *residual AOT call* — the call's
  arguments force the allocation, fields-before-escape,
* snapshot rematerialization of a *nested* VirtualSpec — a removed
  allocation whose field holds another removed allocation.

Each test also runs :func:`repro.analysis.validate_optimization` over
the (recorded, optimized) pair, so the scenarios double as clean-pass
fixtures for the translation validator.
"""

from repro.analysis import validate_optimization
from repro.core.config import JitConfig
from repro.interp.aot import AotFunction
from repro.interp.objects import W_Root
from repro.jit import ir
from repro.jit.optimizer import optimize_trace
from repro.jit.resume import FrameState, Snapshot, VirtualSpec
from repro.jit.trace import LOOP, InputArg, Trace


class W_Box(W_Root):
    _immutable_fields_ = ("pure_field",)
    _size_ = 16


def make_trace(inputargs):
    return Trace(0, LOOP, ("code", 0), inputargs, [], [("code", 0, 1, 0)])


def snap(values):
    return Snapshot((FrameState("code", 0, tuple(values), ()),))


def opt(ops, inputargs, jump_args=None, cfg=None, target=None):
    """Optimize and return (trace, recorded_ops, recorded_jump) so the
    result can be fed to the translation validator."""
    cfg = cfg or JitConfig()
    trace = make_trace(inputargs)
    jump = ir.IROp(ir.JUMP, jump_args if jump_args is not None
                   else list(inputargs), None)
    optimize_trace(cfg, trace, ops, jump, target)
    return trace, ops, jump, cfg


def names(trace):
    return [op.name for op in trace.ops]


def assert_validates(trace, recorded, jump, cfg):
    report = validate_optimization(cfg, trace, recorded_ops=recorded,
                                   recorded_jump=jump)
    assert not report.findings, [f.render() for f in report.findings]


def test_guard_strengthening_on_bridge_entry():
    # A bridge optimizes straight-line against a pre-existing target:
    # its entry carries re-checked guards the parent already
    # established, and dedup must collapse them from an *empty* fact
    # set (no label, no peeled preamble to inherit from).
    i0 = InputArg()
    target_trace = make_trace([InputArg()])
    g_null1 = ir.IROp(ir.GUARD_NONNULL, [i0], None)
    g_null1.snapshot = snap([i0])
    g_cls1 = ir.IROp(ir.GUARD_CLASS, [i0, ir.Const(W_Box)], None)
    g_cls1.snapshot = snap([i0])
    # ... bridge body re-checks both (e.g. after an inlined helper) ...
    g_null2 = ir.IROp(ir.GUARD_NONNULL, [i0], None)
    g_null2.snapshot = snap([i0])
    g_cls2 = ir.IROp(ir.GUARD_CLASS, [i0, ir.Const(W_Box)], None)
    g_cls2.snapshot = snap([i0])
    trace, recorded, jump, cfg = opt(
        [g_null1, g_cls1, g_null2, g_cls2], [i0], jump_args=[i0],
        target=target_trace)
    assert trace.label_index == -1  # straight bridge shape
    ops = names(trace)
    assert ops.count("guard_nonnull") == 1
    assert ops.count("guard_class") == 1
    assert_validates(trace, recorded, jump, cfg)


def test_virtual_escape_via_residual_aot_call():
    # A virtual passed to a residual (non-inlined) AOT call escapes:
    # the optimizer must force it, writing its fields *before* the
    # call, and must not forward mutable reads across the call.
    func = AotFunction("test.sink", "R", "any", lambda ctx: None)
    i0 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "edge_payload")
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    setfield = ir.IROp(ir.SETFIELD_GC, [new, i0], descr)
    call = ir.IROp(ir.CALL, [new], ir.CallDescr(func))
    # Re-read after the call: the callee may have mutated the field.
    getfield = ir.IROp(ir.GETFIELD_GC, [new], descr)
    guard = ir.IROp(ir.GUARD_TRUE, [getfield], None)
    guard.snapshot = snap([i0])
    trace, recorded, jump, cfg = opt(
        [new, setfield, call, getfield, guard], [i0], jump_args=[i0])
    ops = names(trace)
    assert "new_with_vtable" in ops
    assert ops.index("new_with_vtable") < ops.index("call")
    assert ops.index("setfield_gc") < ops.index("call")
    # The post-call read must survive: the call clobbers the heap.
    assert ops.index("call") < ops.index("getfield_gc")
    assert_validates(trace, recorded, jump, cfg)


def test_nested_virtualspec_rematerializes():
    # outer.field -> inner (both virtual): the guard snapshot must
    # capture a VirtualSpec whose field value is itself a VirtualSpec,
    # bottoming out at a live IR value.
    i0 = InputArg()
    outer = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    inner = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    d_link = ir.FieldDescr.get(W_Box, "edge_link")
    d_leaf = ir.FieldDescr.get(W_Box, "edge_leaf")
    set_leaf = ir.IROp(ir.SETFIELD_GC, [inner, i0], d_leaf)
    set_link = ir.IROp(ir.SETFIELD_GC, [outer, inner], d_link)
    guard = ir.IROp(ir.GUARD_TRUE, [i0], None)
    guard.snapshot = snap([outer])
    trace, recorded, jump, cfg = opt(
        [outer, inner, set_leaf, set_link, guard], [i0], jump_args=[i0])
    assert "new_with_vtable" not in names(trace)
    out_guard = next(op for op in trace.ops if op.is_guard())
    spec = out_guard.snapshot.frames[0].locals[0]
    assert isinstance(spec, VirtualSpec)
    assert spec.cls is W_Box
    nested = spec.fields[d_link]
    assert isinstance(nested, VirtualSpec)
    assert nested.cls is W_Box
    # The nested spec bottoms out at the live input value.
    assert nested.fields[d_leaf] is i0
    assert_validates(trace, recorded, jump, cfg)
