"""MiniLang: a tiny stack-based guest VM built on the framework.

This is the framework's tutorial interpreter (and the template the real
TinyPy/TinyRkt VMs follow).  It demonstrates every integration point:

* boxed guest values (``W_Int``) allocated through LLOps,
* a dispatch loop with DISPATCH annotations and an explicit frame stack,
* ``JitDriver`` hooks at backward jumps and during tracing,
* overflow-checked arithmetic with a residual-call fallback,
* type dispatch via ``cls_of`` promotion guards.

Programs are lists of ``(opname, arg)`` pairs operating on locals and an
operand stack; see the tests and ``examples/quickstart.py``.
"""

from repro.core import tags
from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.interp.jitdriver import DEOPTED, JitDriver
from repro.interp.objects import W_Root
from repro.isa import insns
from repro.jit.semantics import LLOverflow


class W_Int(W_Root):
    """A boxed machine integer."""

    _size_ = 16

    def __init__(self, intval):
        self.intval = intval


class W_Big(W_Root):
    """Stand-in for an overflowed (bignum) integer."""

    _size_ = 48

    def __init__(self, bigval):
        self.bigval = bigval


@aot("minilang.big_add", "L", "pure")
def big_add(ctx, a, b):
    ctx.charge(insns.mix(alu=40, load=20, store=10))
    return a + b


class Code(object):
    """A MiniLang code object: (opname, arg) pairs."""

    def __init__(self, name, ops, n_locals):
        self.name = name
        self.ops = ops
        self.n_locals = n_locals
        self.codes = {}  # callee name -> Code

    def __repr__(self):
        return "<minicode %s>" % self.name


class Frame(object):
    __slots__ = ("code", "pc", "locals", "stack")

    def __init__(self, code, pc, locals_values, stack_values):
        self.code = code
        self.pc = pc
        self.locals = locals_values
        self.stack = stack_values


_DISPATCH_MIX = insns.mix(load=2, alu=2)


class MiniInterp(object):
    """The MiniLang VM: one per VMContext."""

    # Ops whose handler only moves values between stack and locals,
    # charging one _b_frame block per touch: fusable into quickened runs
    # (load_const is excluded — llops.new can trigger a minor collect).
    _FUSABLE_CHARGES = {
        "load_local": ("frame", "frame"),
        "store_local": ("frame", "frame"),
        "pop": ("frame",),
    }

    def __init__(self, ctx):
        self.ctx = ctx
        self.llops = ctx.llops
        self.driver = JitDriver(ctx)
        self.frames = []
        self._b_dispatch = ctx.machine.block(_DISPATCH_MIX)
        self._quicken = ctx.config.quicken
        self._quicken_tables = {}
        # Static verification debug gate (repro.analysis); one
        # attribute read on the off path.
        self._verify = ctx.config.verify

    def make_frame(self, code, pc, locals_values, stack_values, extra=None):
        return Frame(code, pc, list(locals_values), list(stack_values))

    def run(self, code, args=()):
        """Run a code object to completion; returns the guest result."""
        if self._verify:
            from repro.analysis import verify_minicode

            verify_minicode(code).raise_if_errors("bytecode verification")
        llops = self.llops
        locals_values = [None] * code.n_locals
        for i, arg in enumerate(args):
            locals_values[i] = llops.new(W_Int, intval=arg)
        frame = self.make_frame(code, 0, locals_values, [])
        self.frames.append(frame)
        return self.run_to_depth(len(self.frames) - 1)

    def run_to_depth(self, barrier):
        """The dispatch loop; returns when the frame stack pops to
        ``barrier`` depth."""
        ctx = self.ctx
        machine = ctx.machine
        llops = self.llops
        frames = self.frames
        retval = None
        quicken = self._quicken
        tables = self._quicken_tables
        b_dispatch = self._b_dispatch
        while len(frames) > barrier:
            frame = frames[-1]
            if quicken and ctx.tracer is None:
                code = frame.code
                runs = tables.get(code)
                if runs is None:
                    runs = self._build_run_table(code)
                    if self._verify:
                        from repro.analysis import verify_mini_run_table

                        verify_mini_run_table(code, runs).raise_if_errors(
                            "quickening verification")
                    tables[code] = runs
                entry = runs[frame.pc]
                if entry is not None:
                    # Superinstruction: one batched quick_run for every
                    # dispatch + frame-op charge, then the raw moves.
                    machine.quick_run(tags.DISPATCH, b_dispatch,
                                      entry[0], entry[3])
                    stack = frame.stack
                    locals_values = frame.locals
                    for opname, arg in entry[1]:
                        if opname == "load_local":
                            stack.append(locals_values[arg])
                        elif opname == "store_local":
                            locals_values[arg] = stack.pop()
                        else:
                            stack.pop()
                    frame.pc = entry[2]
                    continue
            machine.annot(tags.DISPATCH)
            machine.exec_block(b_dispatch)
            opname, arg = frame.code.ops[frame.pc]
            machine.indirect(0x100, hash(opname) & 0xFFFF)
            if ctx.tracer is not None:
                if self.driver.trace_dispatch(self, frame) == DEOPTED:
                    continue
                if frame is not frames[-1] or ctx.tracer is None:
                    # Deopt or abort changed the frame state; re-dispatch.
                    continue
                opname, arg = frame.code.ops[frame.pc]
            retval = self.execute_op(frame, opname, arg)
        return retval

    def _build_run_table(self, code):
        """Quickened run table (see repro.interp.quicken).

        ``table[pc]`` is None or ``(items, ops, next_pc, n_insns)``.
        MiniLang's dispatch pc hash is the constant 0x100 and its target
        depends only on the current opname, so — unlike TinyPy — no
        previous-opcode check is needed and runs may start at pc 0.
        """
        from repro.interp.quicken import find_runs

        llops = self.llops
        b_frame = llops._b_frame
        charges = {
            name: tuple(b_frame for _ in blocks)
            for name, blocks in self._FUSABLE_CHARGES.items()
        }
        ops = code.ops
        n = len(ops)
        jump_targets = set()
        merge_targets = set()
        for pc, (opname, arg) in enumerate(ops):
            if opname in ("jump", "jump_if_false"):
                jump_targets.add(arg)
                if arg <= pc:
                    merge_targets.add(arg)
        table = [None] * n
        b_dispatch = self._b_dispatch

        def fusable(pc):
            return ops[pc][0] in charges

        for start, end in find_runs(n, fusable, jump_targets,
                                    merge_targets, start_pc=0):
            items = tuple(
                (0x100, hash(ops[j][0]) & 0xFFFF, charges[ops[j][0]])
                for j in range(start, end))
            n_insns = sum(
                2 + b_dispatch.n_insns + sum(b.n_insns for b in blocks)
                for _pc, _target, blocks in items)
            table[start] = (items, tuple(ops[start:end]), end, n_insns)
        return table

    # -- handlers ----------------------------------------------------------------

    def execute_op(self, frame, opname, arg):
        llops = self.llops
        if opname == "load_const":
            llops.stack_push(frame, llops.new(W_Int, intval=arg))
        elif opname == "load_local":
            llops.stack_push(frame, llops.getlocal(frame, arg))
        elif opname == "store_local":
            llops.setlocal(frame, arg, llops.stack_pop(frame))
        elif opname == "pop":
            llops.stack_pop(frame)
        elif opname == "add":
            self.op_add(frame)
        elif opname == "sub":
            self.op_arith(frame, llops.int_sub_ovf)
        elif opname == "mul":
            self.op_arith(frame, llops.int_mul_ovf)
        elif opname == "lt":
            self.op_cmp(frame, llops.int_lt)
        elif opname == "eq":
            self.op_cmp(frame, llops.int_eq)
        elif opname == "jump_if_false":
            w_cond = llops.stack_pop(frame)
            cond = self.int_value(w_cond)
            if llops.is_true(llops.int_is_true(cond)):
                frame.pc += 1
            else:
                backward = arg <= frame.pc
                frame.pc = arg
                if backward:
                    self.driver.loop_header(self, frame)
            return
        elif opname == "jump":
            backward = arg <= frame.pc
            frame.pc = arg
            if backward:
                self.driver.loop_header(self, frame)
            return
        elif opname == "call":
            self.op_call(frame, arg)
            return
        elif opname == "return":
            return self.op_return(frame)
        else:
            raise GuestError("unknown minilang op %r" % opname)
        frame.pc += 1

    def int_value(self, w_value):
        llops = self.llops
        cls = llops.cls_of(w_value)
        if cls is not W_Int:
            raise GuestError("expected int")
        return llops.getfield(w_value, "intval")

    def op_add(self, frame):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        a = self.int_value(w_a)
        b = self.int_value(w_b)
        try:
            result = llops.int_add_ovf(a, b)
        except LLOverflow:
            w_big = llops.residual_call(big_add, a, b)
            llops.stack_push(frame, llops.new(W_Big, bigval=w_big))
            return
        llops.stack_push(frame, llops.new(W_Int, intval=result))

    def op_arith(self, frame, ll_op):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        a = self.int_value(w_a)
        b = self.int_value(w_b)
        result = ll_op(a, b)
        llops.stack_push(frame, llops.new(W_Int, intval=result))

    def op_cmp(self, frame, ll_cmp):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        flag = ll_cmp(self.int_value(w_a), self.int_value(w_b))
        boxed = llops.new(
            W_Int, intval=self.flag_to_int(flag)
        )
        llops.stack_push(frame, boxed)

    def flag_to_int(self, flag):
        # Convert a red bool into a red 0/1 without leaving LLOps land.
        llops = self.llops
        if llops.is_true(flag):
            return 1
        return 0

    def op_call(self, frame, name):
        llops = self.llops
        code = frame.code.codes[name]
        args = [llops.stack_pop(frame) for _ in range(1)]
        locals_values = [None] * code.n_locals
        locals_values[0] = args[0]
        frame.pc += 1
        self.frames.append(self.make_frame(code, 0, locals_values, []))

    def op_return(self, frame):
        llops = self.llops
        w_result = llops.stack_pop(frame)
        self.frames.pop()
        if self.frames:
            llops.stack_push(self.frames[-1], w_result)
        return w_result
