"""Shared diagnostics core for the static verification passes.

Every pass (IR verifier, bytecode abstract interpreter, effect
cross-checker) reports through a :class:`Report`: a list of
:class:`Finding` records with a stable error code, a severity, a
human-readable message, and a source location string.  Reports render
as text (one finding per line, like a compiler) and as machine-readable
JSON (``tools/lint.py --json``), and can be turned into a raised
:class:`repro.core.errors.VerificationError` at the ``config.verify``
debug gates.

Error-code taxonomy (see DESIGN.md §12):

* ``IR1xx`` — IR def-before-use / structural integrity
* ``IR2xx`` — IR per-opnum arity, operand kinds, descriptors
* ``IR3xx`` — guard / resume-snapshot consistency
* ``IR4xx`` — loop, label and jump wiring (incl. peeling invariants)
* ``IR5xx`` — effect discipline inside a trace
* ``IR6xx`` — backend numbering / cost attachment
* ``BC1xx`` — bytecode structure (jump targets, operand indices,
  terminators)
* ``BC2xx`` — operand-stack simulation (underflow, merge mismatch)
* ``BC3xx`` — dead / unreachable code (warnings)
* ``BC4xx`` — quickening run-table invariants
* ``EFF0xx`` — effect/purity declarations vs. optimizer behaviour
"""

import json

from repro.core.errors import VerificationError

ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


class Finding(object):
    """One diagnostic: a coded, located, machine-readable message."""

    __slots__ = ("code", "severity", "message", "where", "pass_name")

    def __init__(self, code, severity, message, where="", pass_name=""):
        assert severity in SEVERITIES, severity
        self.code = code
        self.severity = severity
        self.message = message
        self.where = where          # e.g. "trace #3 op 17" / "richards:f pc 4"
        self.pass_name = pass_name  # "irverify" / "bcverify" / "effects"

    def render(self):
        location = "%s: " % self.where if self.where else ""
        return "%s%s [%s] %s" % (location, self.severity, self.code,
                                 self.message)

    def to_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
            "pass": self.pass_name,
        }

    def __repr__(self):
        return "<Finding %s %s>" % (self.code, self.where)


class Report(object):
    """Findings collected by one or more verification passes."""

    def __init__(self, subject=""):
        self.subject = subject
        self.findings = []

    def add(self, code, severity, message, where="", pass_name=""):
        finding = Finding(code, severity, message, where=where,
                          pass_name=pass_name)
        self.findings.append(finding)
        return finding

    def error(self, code, message, where="", pass_name=""):
        return self.add(code, ERROR, message, where=where,
                        pass_name=pass_name)

    def warning(self, code, message, where="", pass_name=""):
        return self.add(code, WARNING, message, where=where,
                        pass_name=pass_name)

    def extend(self, other):
        self.findings.extend(other.findings)
        return self

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self):
        return not self.errors

    def codes(self):
        """The set of finding codes (tests assert on these)."""
        return frozenset(f.code for f in self.findings)

    def has(self, code):
        return any(f.code == code for f in self.findings)

    def render(self):
        lines = []
        if self.subject:
            lines.append("== %s ==" % self.subject)
        lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)

    def to_dict(self):
        return {
            "subject": self.subject,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def raise_if_errors(self, context=""):
        """Raise :class:`VerificationError` when any error was found."""
        errors = self.errors
        if not errors:
            return
        head = "; ".join(f.render() for f in errors[:4])
        if len(errors) > 4:
            head += "; ... (%d errors total)" % len(errors)
        prefix = "%s: " % context if context else ""
        raise VerificationError(prefix + head, report=self)

    def __repr__(self):
        return "<Report %s: %d errors, %d warnings>" % (
            self.subject or "?", len(self.errors), len(self.warnings))
