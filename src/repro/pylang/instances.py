"""TinyPy instances and classes: mapdict attributes, version-tagged
method lookup, and guest string conversion — as a VM mixin."""

from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.isa import insns
from repro.jit import ir
from repro.pylang.objects import (
    W_BigInt,
    W_Bool,
    W_BoundMethod,
    W_Class,
    W_Dict,
    W_Float,
    W_Function,
    W_Instance,
    W_Int,
    W_List,
    W_Module,
    W_None,
    W_Range,
    W_Set,
    W_Str,
    W_Tuple,
    VersionTag,
)
from repro.pylang.ops import is_intish
from repro.rlib import rbigint, rstr


# Interned cost mixes (hoisted: building a mix per call showed up in
# profiles; the interned block retires the identical mix).
_SHAPE_MIX = insns.mix(load=2, alu=2)
_VERSION_MIX = insns.mix(load=3, alu=3)
_GLOBAL_SET_MIX = insns.mix(load=3, alu=3, store=1)
_CLASS_WRITE_MIX = insns.mix(load=3, alu=4, store=2)


def _class_lookup_raw(w_class, name):
    """Walk the MRO; elidable given (class, version, name)."""
    current = w_class
    while current is not None:
        entry = current.methods.get(name)
        if entry is not None:
            return entry
        current = current.w_base
    return None


class InstancesMixin(object):
    """Attribute access, class machinery and conversions."""

    def _init_instance_caches(self, machine):
        """Interned charge blocks + host inline caches.

        The ICs (quicken fast path, direct mode only) skip the host-side
        lookups while replaying the exact event sequence of the slow
        path, so counters cannot drift.  FieldDescr offsets are assigned
        by order of first use in a process-global registry; they are
        resolved only at IC *fill* time — after the slow path's getfield
        has registered the descriptor — so the assignment order matches
        an unquickened run exactly.
        """
        self._b_shape_mix = machine.block(_SHAPE_MIX)
        self._b_version_mix = machine.block(_VERSION_MIX)
        self._b_global_set_mix = machine.block(_GLOBAL_SET_MIX)
        self._b_class_write_mix = machine.block(_CLASS_WRITE_MIX)
        # name -> (version, module, cell|None, builtin|None, ver_off,
        # cell_off); valid while the module's version tag is unchanged
        # (first stores and builtin shadowing bump it).
        self._ic_global = {}
        # (class, name) -> (version, result, ver_off); class_setattr
        # bumps the version tag.
        self._ic_class = {}
        # (shape, name) -> slot; shapes are immutable (attribute adds
        # transition to a fresh Shape), so entries never invalidate.
        self._ic_attr = {}
        self._ic_inst_offsets = None   # (shape_off, slots_off) once seen

    # -- attribute reads ---------------------------------------------------------

    def getattr_w(self, w_obj, name):
        """LOAD_ATTR: name is a green string."""
        llops = self.llops
        direct = self._quicken and self.ctx.tracer is None
        if direct and type(w_obj) is W_Instance:
            offs = self._ic_inst_offsets
            if offs is not None:
                shape = w_obj.shape
                slot = self._ic_attr.get((shape, name), -1)
                if slot >= 0:
                    # IC hit: replay cls_of + shape getfield/promote +
                    # lookup mix + slots getfield + getarrayitem, with
                    # addresses read from the live objects.
                    machine = self.ctx.machine
                    xb = llops._xb
                    xb(llops._b_cls)
                    xb(llops._b_field)
                    machine.load(w_obj._addr + offs[0])
                    xb(llops._b_misc)
                    machine.exec_block(self._b_shape_mix)
                    slots = w_obj.slots
                    xb(llops._b_field)
                    machine.load(w_obj._addr + offs[1])
                    xb(llops._b_array)
                    machine.load(slots._addr + 16 + 8 * slot)
                    return slots.items[slot]
        cls = llops.cls_of(w_obj)
        if cls is W_Instance:
            shape = llops.promote(llops.getfield(w_obj, "shape"))
            self.ctx.machine.exec_block(self._b_shape_mix)
            slot = shape.lookup(name)
            if slot >= 0:
                slots = llops.getfield(w_obj, "slots")
                w_value = llops.getarrayitem(slots, slot)
                if direct:
                    self._ic_attr[(shape, name)] = slot
                    if self._ic_inst_offsets is None:
                        self._ic_inst_offsets = (
                            ir.FieldDescr.get(W_Instance, "shape").offset,
                            ir.FieldDescr.get(W_Instance, "slots").offset)
                return w_value
            w_value = self.class_lookup(shape.w_class, name)
            if w_value is not None:
                if isinstance(w_value, W_Function):
                    return llops.new(W_BoundMethod, w_self=w_obj,
                                     w_func=w_value)
                return w_value
            raise GuestError("AttributeError: %s.%s"
                             % (shape.w_class.name, name))
        if cls is W_Class:
            w_class = llops.promote(w_obj)
            w_value = self.class_lookup(w_class, name)
            if w_value is None:
                raise GuestError("AttributeError: %s.%s"
                                 % (w_class.name, name))
            return w_value
        if cls is W_Module:
            w_module = llops.promote(w_obj)
            return self.global_get(w_module, name)
        # Builtin-type methods (list.append, str.join, dict.get, ...).
        w_method = self.builtin_method(cls, name)
        if w_method is not None:
            return llops.new(W_BoundMethod, w_self=w_obj, w_func=w_method)
        raise GuestError("AttributeError: %s object has no attribute %r"
                         % (cls.__name__, name))

    def class_lookup(self, w_class, name):
        """Version-tagged elidable class-attribute lookup.

        ``w_class`` must already be promoted (a green).  The version tag
        is promoted too, so inside traces this folds to a constant —
        PyPy's method-cache technique.
        """
        llops = self.llops
        direct = self._quicken and self.ctx.tracer is None
        if direct:
            entry = self._ic_class.get((w_class, name))
            if entry is not None and entry[0] is w_class.version:
                machine = self.ctx.machine
                xb = llops._xb
                xb(llops._b_field)
                machine.load(w_class._addr + entry[2])
                xb(llops._b_misc)
                machine.exec_block(self._b_version_mix)
                return entry[1]
        version = llops.promote(llops.getfield(w_class, "version"))
        self.ctx.machine.exec_block(self._b_version_mix)
        assert isinstance(version, VersionTag)
        result = _class_lookup_raw(w_class, name)
        if direct:
            self._ic_class[(w_class, name)] = (
                version, result,
                ir.FieldDescr.get(W_Class, "version").offset)
        return result

    # -- attribute writes ----------------------------------------------------------

    def setattr_w(self, w_obj, name, w_value):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_Instance:
            shape = llops.promote(llops.getfield(w_obj, "shape"))
            self.ctx.machine.exec_block(self._b_shape_mix)
            slot = shape.lookup(name)
            if slot >= 0:
                slots = llops.getfield(w_obj, "slots")
                llops.setarrayitem(slots, slot, w_value)
                return
            new_shape = shape.transition(name)
            slots = llops.getfield(w_obj, "slots")
            llops.residual_call(_mapdict_add_slot_arr, slots, w_value)
            llops.setfield(w_obj, "shape", new_shape)
            return
        if cls is W_Class:
            w_class = llops.promote(w_obj)
            self.class_setattr(w_class, name, w_value)
            return
        if cls is W_Module:
            self.global_set(llops.promote(w_obj), name, w_value)
            return
        raise GuestError("cannot set attribute on %s" % cls.__name__)

    def class_setattr(self, w_class, name, w_value):
        from repro.interp.objects import concrete

        llops = self.llops
        self.ctx.machine.exec_block(self._b_class_write_mix)
        w_class.methods[name] = concrete(w_value)
        # Bump the version: invalidates promoted lookups.  The tag is a
        # fresh runtime object, so it comes from a residual call.
        llops.setfield(w_class, "version",
                       llops.residual_call(_new_version_tag))

    # -- module globals (celldict) ----------------------------------------------------

    def global_get(self, w_module, name):
        """Promoted-version global lookup; folds to a cell constant."""
        llops = self.llops
        direct = self._quicken and self.ctx.tracer is None
        if direct:
            entry = self._ic_global.get(name)
            if entry is not None and entry[1] is w_module \
                    and entry[0] is w_module.version:
                # IC hit: replay version getfield/promote + lookup mix +
                # cell read.  Rebinding an existing global writes the
                # cached cell in place (no version bump), so reading
                # cell.w_value here stays exact; first stores and
                # builtin shadowing bump the version and miss.
                machine = self.ctx.machine
                xb = llops._xb
                xb(llops._b_field)
                machine.load(w_module._addr + entry[4])
                xb(llops._b_misc)
                machine.exec_block(self._b_version_mix)
                cell = entry[2]
                if cell is None:
                    return entry[3]
                xb(llops._b_field)
                machine.load(cell._addr + entry[5])
                return cell.w_value
        version = llops.promote(llops.getfield(w_module, "version"))
        assert isinstance(version, VersionTag)
        self.ctx.machine.exec_block(self._b_version_mix)
        cell = w_module.cells.get(name)
        if cell is None:
            w_value = self.builtin_global(name)
            if w_value is not None:
                if direct:
                    self._ic_global[name] = (
                        version, w_module, None, w_value,
                        ir.FieldDescr.get(W_Module, "version").offset, 0)
                return w_value
            raise GuestError("NameError: name %r is not defined" % name)
        w_value = llops.getfield(cell, "w_value")
        if direct:
            self._ic_global[name] = (
                version, w_module, cell, None,
                ir.FieldDescr.get(W_Module, "version").offset,
                ir.FieldDescr.get(_CELL_CLS, "w_value").offset)
        return w_value

    def global_set(self, w_module, name, w_value):
        llops = self.llops
        cell = w_module.cells.get(name)
        self.ctx.machine.exec_block(self._b_global_set_mix)
        if cell is not None:
            llops.setfield(cell, "w_value", w_value)
            return
        # First store of this global.  The cell creation, the celldict
        # insert, and the version bump all happen inside ONE residual
        # call: a trace recorded through this path must re-execute the
        # dict insert, and a host-side ``cells[name] = ...`` performed
        # inline at record time would silently vanish from the compiled
        # trace — later executions would then write into an orphaned
        # cell while reads keep hitting the record-time one.
        llops.residual_call(_celldict_add_cell, w_module, name, w_value)

    # -- class creation -----------------------------------------------------------------

    def make_class(self, spec, w_module):
        llops = self.llops
        w_base = None
        if spec.base_name is not None:
            w_base = self.global_get(w_module, spec.base_name)
            if not isinstance(w_base, W_Class):
                raise GuestError("base %r is not a class" % spec.base_name)
        w_class = W_Class(spec.name, w_base)
        w_class._addr = self.ctx.gc.allocate(W_Class._size_, obj=w_class)
        for method_name, code, defaults in spec.methods:
            defaults_w = [self.wrap_const(value) for value in defaults]
            w_func = W_Function(code, w_module, defaults_w)
            w_func._addr = self.ctx.gc.allocate(W_Function._size_,
                                                obj=w_func)
            self.ctx.machine.exec_block(self._b_class_write_mix)
            w_class.methods[method_name] = w_func
        return w_class

    def instantiate(self, w_class):
        llops = self.llops
        slots = llops.newarray(0)
        return llops.new(W_Instance, shape=w_class.shape, slots=slots)

    # -- conversions -------------------------------------------------------------------------

    def str_of(self, w_obj):
        """Guest str() as a raw Python string."""
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_Str:
            return self.str_val(w_obj)
        if cls is W_Bool:
            return "True" if llops.is_true(
                llops.int_is_true(self.int_val(w_obj))) else "False"
        if cls is W_Int:
            return llops.residual_call(rstr.ll_int2dec, self.int_val(w_obj))
        if cls is W_Float:
            return llops.residual_call(rstr.ll_float2str,
                                       self.float_val(w_obj))
        if cls is W_BigInt:
            return llops.residual_call(rbigint.big_str, self.big_val(w_obj))
        if cls is W_None:
            return "None"
        return self.repr_of(w_obj)

    def repr_of(self, w_obj):
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_Str:
            return "'" + self.str_val(w_obj) + "'"
        if cls is W_List:
            length = llops.promote(self.list_len_raw(w_obj))
            parts = [self.repr_of(self.list_getitem(w_obj, i))
                     for i in range(length)]
            return "[" + ", ".join(parts) + "]"
        if cls is W_Tuple:
            length = llops.promote(self.tuple_len_raw(w_obj))
            parts = [self.repr_of(self.tuple_getitem_raw(w_obj, i))
                     for i in range(length)]
            if length == 1:
                return "(" + parts[0] + ",)"
            return "(" + ", ".join(parts) + ")"
        if cls is W_Dict:
            rdict = llops.getfield(w_obj, "rdict")
            from repro.rlib.rordereddict import ll_dict_values

            pairs = llops.residual_call(ll_dict_values, rdict)
            length = llops.promote(llops.residual_call(_raw_len_i, pairs))
            parts = []
            for i in range(length):
                pair = llops.residual_call(_raw_get_i, pairs, i)
                parts.append("%s: %s" % (
                    self.repr_of(self.pair_key(pair)),
                    self.repr_of(self.pair_value(pair))))
            return "{" + ", ".join(parts) + "}"
        if cls is W_Set:
            rdict = llops.getfield(w_obj, "rdict")
            from repro.rlib.rordereddict import ll_dict_values

            pairs = llops.residual_call(ll_dict_values, rdict)
            length = llops.promote(llops.residual_call(_raw_len_i, pairs))
            if not length:
                return "set()"
            parts = []
            for i in range(length):
                pair = llops.residual_call(_raw_get_i, pairs, i)
                parts.append(self.repr_of(self.pair_key(pair)))
            return "{" + ", ".join(parts) + "}"
        if cls is W_Instance:
            shape = llops.promote(llops.getfield(w_obj, "shape"))
            return "<%s instance>" % shape.w_class.name
        if cls is W_Class:
            return "<class %s>" % llops.promote(w_obj).name
        if cls is W_Function:
            return "<function>"
        if cls is W_Range:
            return "range(%d, %d)" % (
                llops.promote(llops.getfield(w_obj, "start")),
                llops.promote(llops.getfield(w_obj, "stop")))
        return self.str_of(w_obj)

    def str_mod(self, w_template, w_values):
        """The guest '%' string-formatting operator.

        The whole operation is one residual call taking the boxed value
        tuple; unboxing happens inside (passing a host tuple of red
        parts would constant-capture them in traces).
        """
        template = self.str_val(w_template)
        return self.wrap_str(self.llops.residual_call(
            _str_mod_boxed, template, w_values))

    def format_value(self, w_obj):
        """Raw payload for %-formatting."""
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if is_intish(cls):
            return self.int_val(w_obj)
        if cls is W_Float:
            return self.float_val(w_obj)
        if cls is W_Str:
            return self.str_val(w_obj)
        return self.str_of(w_obj)


from repro.pylang.objects import Cell as _CELL_CLS  # noqa: E402


@aot("celldict.new_version", "R", "any")
def _new_version_tag(ctx):
    ctx.charge(insns.mix(alu=2, store=1))
    return VersionTag()


@aot("celldict.add_cell", "R", "any")
def _celldict_add_cell(ctx, w_module, name, w_value):
    """First store of a global: insert a fresh cell, bump the version.

    A compiled trace can replay this after the cell already exists (the
    record-time execution created it), so the existing-cell case
    degrades to a plain cell write with no version bump.
    """
    from repro.interp.objects import concrete

    ctx.charge(insns.mix(load=3, alu=6, store=4))
    cell = w_module.cells.get(name)
    if cell is not None:
        concrete(cell).w_value = w_value
        return None
    new_cell = _CELL_CLS(w_value)
    new_cell._addr = ctx.gc.allocate(_CELL_CLS._size_, obj=new_cell)
    w_module.cells[name] = concrete(new_cell)
    w_module.version = VersionTag()
    return None


@aot("format.mod", "M", "pure")
def _str_mod_boxed(ctx, template, w_values):
    """%-format with a boxed argument (tuple or single value)."""
    from repro.pylang.objects import (
        W_Float as _F, W_Int as _I, W_Str as _S, W_Tuple as _T,
    )
    from repro.pylang.ops import str_format_mod

    def unbox(w_item):
        if isinstance(w_item, _I):
            return w_item.intval
        if isinstance(w_item, _F):
            return w_item.floatval
        if isinstance(w_item, _S):
            return w_item.strval
        if isinstance(w_item, rbigint.BigInt):
            return int(rbigint._to_decimal(w_item))
        from repro.pylang.objects import W_BigInt as _B

        if isinstance(w_item, _B):
            return int(rbigint._to_decimal(w_item.bigval))
        return str(w_item)

    if isinstance(w_values, _T):
        raw = tuple(unbox(w) for w in w_values.items.items)
    else:
        raw = (unbox(w_values),)
    return str_format_mod.fn(ctx, template, raw)


@aot("mapdict.add_slot", "I", "any")
def _mapdict_add_slot_arr(ctx, slots_array, w_value):
    items = slots_array.items
    ctx.charge(insns.mix(load=2, store=2, alu=2))
    items.append(w_value)
    return None


@aot("rlist.ll_raw_len", "R", "readonly")
def _raw_len_i(ctx, items):
    ctx.charge(insns.mix(load=1))
    return len(items)


@aot("rlist.ll_raw_get", "R", "readonly")
def _raw_get_i(ctx, items, index):
    ctx.charge(insns.mix(load=2, alu=1))
    return items[index]
