"""One framework, two languages (the paper's central premise).

Runs the same algorithm (spectral norm) written in TinyPy and TinyRkt on
their meta-tracing VMs plus their reference VMs, and compares times and
phase behaviour — a miniature of the paper's PyPy/Pycket comparison.

Run:  python examples/two_languages.py
"""

from repro.benchprogs import registry
from repro.harness.runner import run_program


def main():
    python_program = registry.py_program("spectralnorm")
    racket_program = registry.rkt_program("spectralnorm")
    n = 24

    cpython = run_program(python_program, "cpython", n=n)
    pypy = run_program(python_program, "pypy", n=n)
    racket = run_program(racket_program, "racket", n=n)
    pycket = run_program(racket_program, "pycket", n=n)

    print("spectralnorm, simulated seconds:")
    print("  Python:  cpython %.5f   pypy  %.5f  (%.2fx)"
          % (cpython.seconds, pypy.seconds,
             cpython.seconds / pypy.seconds))
    print("  Racket:  racket  %.5f   pycket %.5f  (%.2fx)"
          % (racket.seconds, pycket.seconds,
             racket.seconds / pycket.seconds))

    print("\nphase breakdown of the two meta-tracing VMs:")
    for label, result in (("pypy", pypy), ("pycket", pycket)):
        parts = ["%s=%.2f" % (k, v)
                 for k, v in result.phase_breakdown.items() if v > 0.01]
        print("  %-7s %s" % (label, "  ".join(parts)))

    print("\nboth outputs agree with their reference VMs:")
    print("  python:", pypy.output.strip())
    print("  racket:", pycket.output.strip())


if __name__ == "__main__":
    main()
