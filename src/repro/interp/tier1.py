"""The baseline threaded-code tier (tier-1 JIT).

Meta-tracing VMs are two-mode systems: a (slow) interpreter and a
(fast, but warmup-heavy) tracing JIT.  Izawa & Bolz-Tereick's
multi-tier work derives a cheap middle tier from the same interpreter
definition: hot code objects are compiled — per bytecode, no profiling
of values — into *subroutine-threaded* handler sequences, so cold and
warming code pays neither the full dispatch-loop overhead nor the cost
of tracing.  This module is the guest-independent half of that tier:

* :class:`TierManager` — the promotion state machine.  Guest hooks
  (``JitDriver.loop_header`` at backward jumps and, for entry-profiled
  guests, frame pushes) bump a per-code-object counter; at
  ``config.jit.tier1_threshold`` (strictly below the hot-loop
  threshold) the code object is compiled by the guest's
  :class:`TierSpec` and execution switches to the threaded sequence.
  Demotion (:meth:`TierManager.invalidate`) drops the threaded code and
  restarts the counter in a new *generation*; the JitDriver demotes a
  code object when the tracing tier blacklists one of its loops —
  control flow irregular enough to defeat the tracer also defeats the
  monomorphic-dispatch assumption threaded code is built on.

* :class:`ThreadedCode` — the compiled artifact: per-pc site-keyed
  dispatch hashes plus fused straight-line runs derived from the same
  :func:`repro.interp.quicken.find_runs` analysis the quickening layer
  uses, charged through the existing fused ``Machine`` entry points
  (``dispatch_event`` / ``quick_run``), so every counter stays exact on
  every simulation backend.

What the tier changes — and what it must not change
---------------------------------------------------

Threaded code executes the *same* guest handlers in the same order: the
guest-visible event sequence (stdout, DISPATCH/bytecode counts,
conditional branches, allocations, GC collections, hot-loop counting,
trace entries and the recorded trace IR) is identical with the tier on
or off.  What changes is the *cost* of dispatch: the per-bytecode
dispatch block shrinks from the interpreter's full fetch/decode
sequence to a load of the next handler address plus the indirect jump,
and the indirect-branch pc hash becomes a per-site constant (each
threaded call site jumps to one handler) instead of the interpreter's
shared, previous-opcode-correlated dispatch site — the classic
threaded-code win on the BTB.  With ``config.tier1`` off nothing here
is constructed and the dispatch loop is bit-identical to the two-mode
system.

Tracing always wins over the tier: while ``ctx.tracer`` is active the
dispatch loop takes its ordinary unfused path, so the meta-interpreter
records exactly the IR it would record from the plain interpreter
(tier-1 code remains traceable), and compiled traces are entered from
threaded code through the same ``loop_header`` hook.
"""

from repro.core import tags


class ThreadedCode(object):
    """Tier-1 compiled form of one guest code object.

    * ``sites`` — per-pc dispatch pc hashes for the BTB: every threaded
      call site is its own (near-monomorphic) indirect-branch site.
    * ``runs`` — per-pc fused straight-line entries, same shape as the
      quickening run table minus the predecessor-opcode guard (threaded
      sites do not hash on the previous opcode):
      ``(items, pairs, next_pc, last_op, n_insns)`` or ``None``.
    * ``progs`` — per-pc resident event-programs wrapping each run's
      ``quick_run`` call (``config.eventprog``; None when off), parallel
      to ``runs`` so the dispatch loop indexes both with the run pc.
    * ``generation`` — the promotion generation this artifact belongs
      to (diagnostics; a demoted-then-repromoted code object gets a
      fresh artifact with the next generation number).
    """

    __slots__ = ("code", "sites", "runs", "progs", "generation")

    def __init__(self, code, sites, runs, generation, progs=None):
        self.code = code
        self.sites = sites
        self.runs = runs
        self.progs = progs
        self.generation = generation

    def __repr__(self):
        fused = sum(1 for entry in self.runs if entry is not None)
        return "<ThreadedCode %s gen=%d pcs=%d runs=%d>" % (
            getattr(self.code, "name", self.code), self.generation,
            len(self.sites), fused)


class TierManager(object):
    """Promotion state machine + threaded-code cache for one VM.

    The manager is only constructed when ``config.tier1`` is set; every
    hot-path hook first checks ``driver.tier is not None``, so the
    disabled system is untouched.  ``epoch`` increments on every
    promotion and demotion; dispatch loops cache the per-code lookup
    and re-probe when the epoch moves, so a demotion mid-run takes
    effect at the next bytecode boundary.
    """

    def __init__(self, ctx, spec):
        self.ctx = ctx
        self.spec = spec
        self.threshold = ctx.config.jit.tier1_threshold
        self.telemetry = ctx.telemetry
        # code -> promotion counter (reset on promotion and demotion).
        self.counters = {}
        # code -> ThreadedCode for currently-promoted code objects.
        self.compiled = {}
        # code -> demotion count; the next promotion's generation.
        self.generations = {}
        # Monotonic; bumped by promote/invalidate for cache busting.
        self.epoch = 0
        self.promotions = 0
        self.demotions = 0
        self.compiled_ops = 0
        # Whether the guest also bumps at frame entry (recursion-heavy
        # guests promote through calls, not just backward jumps).
        self.entry_profiling = spec.entry_profiling

    # -- promotion -----------------------------------------------------------

    def bump(self, interp, code):
        """One profiling event for ``code``; promotes at the threshold.

        Callers guarantee ``code not in self.compiled`` (the dispatch
        loop only reaches the hooks for unpromoted code) and
        ``ctx.tracer is None`` (no machine charges mid-recording).
        """
        count = self.counters.get(code, 0) + 1
        if count >= self.threshold:
            self.counters[code] = 0
            self.promote(interp, code)
        else:
            self.counters[code] = count

    def promote(self, interp, code):
        """Compile ``code`` to threaded code, charging the machine.

        The compile cost is bracketed by TIER1_COMPILE annotations
        (interpreter-layer tags: the work is accounted to the interp
        phase, like quickening would be in a real VM) and charged per
        bytecode through ``exec_block``, so it lands at the exact
        simulated point the promotion happens.
        """
        machine = self.ctx.machine
        machine.annot(tags.TIER1_COMPILE_START,
                      getattr(code, "name", None))
        tcode = self.spec.compile(interp, code,
                                  self.generations.get(code, 0))
        machine.annot(tags.TIER1_COMPILE_STOP,
                      getattr(code, "name", None))
        if self.ctx.config.verify:
            from repro.analysis import validate_threaded_code

            validate_threaded_code(interp, code, tcode).raise_if_errors(
                "tier1 translation validation")
        self.compiled[code] = tcode
        self.epoch += 1
        self.promotions += 1
        self.compiled_ops += len(tcode.sites)
        t = self.telemetry
        if t is not None:
            t.count("interp.tier1.promotions")
            t.count("interp.tier1.compiled_ops", len(tcode.sites))
        return tcode

    # -- demotion ------------------------------------------------------------

    def invalidate(self, code):
        """Demote ``code``: drop its threaded code, restart profiling.

        Returns True when the code object was actually promoted.  The
        counter resets and the generation advances whether or not a
        compiled artifact existed, so a blacklisted-before-promotion
        code object also starts a fresh generation.
        """
        was_promoted = self.compiled.pop(code, None) is not None
        self.counters[code] = 0
        self.generations[code] = self.generations.get(code, 0) + 1
        self.epoch += 1
        if was_promoted:
            self.demotions += 1
            t = self.telemetry
            if t is not None:
                t.count("interp.tier1.demotions")
        return was_promoted

    # -- reporting -----------------------------------------------------------

    def stats(self):
        """Plain-dict summary for RunResult / store payloads."""
        return {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promoted_now": len(self.compiled),
            "compiled_ops": self.compiled_ops,
            "threshold": self.threshold,
            "entry_profiling": self.entry_profiling,
        }
