"""Campaign driver: statuses, crash containment, progress reporting."""

from repro.difftest import campaign
from repro.difftest.campaign import run_campaign, run_iteration
from repro.difftest.generator import GenConfig


def test_clean_iteration_is_ok():
    status, finding = run_iteration(3, gen_config=GenConfig.small(),
                                    thresholds=(2,))
    assert status == "ok"
    assert finding is None


def test_engine_crash_becomes_finding(monkeypatch):
    def boom(source, **kwargs):
        raise ValueError("engine fell over")

    monkeypatch.setattr(campaign, "check_program", boom)
    status, finding = run_iteration(3, gen_config=GenConfig.small())
    assert status == "divergent"
    assert finding.kinds == ("crash",)
    assert any("engine fell over" in d for d in finding.details)


def test_campaign_counts_and_progress():
    seen = []
    result = run_campaign(3, base_seed=100, gen_config=GenConfig.small(),
                          thresholds=(2,),
                          progress=lambda seed, status: seen.append(seed))
    assert result.iterations == 3
    assert seen == [100, 101, 102]
    assert result.ok
    assert result.inconclusive == 0


def test_campaign_survives_crashing_iteration(monkeypatch):
    real = campaign.check_program

    def flaky(source, **kwargs):
        flaky.calls += 1
        if flaky.calls == 2:
            raise RuntimeError("boom")
        return real(source, **kwargs)

    flaky.calls = 0
    monkeypatch.setattr(campaign, "check_program", flaky)
    result = run_campaign(3, base_seed=100, gen_config=GenConfig.small(),
                          thresholds=(2,), shrink_failures=False)
    assert result.iterations == 3
    assert len(result.findings) == 1
    assert result.findings[0].kinds == ("crash",)
