import pytest

from repro.core import tags
from repro.core.config import SystemConfig
from repro.gc.heap import NURSERY_BASE, SimGC
from repro.uarch.machine import Machine


class Dummy:
    """A weak-referenceable allocation stand-in."""


@pytest.fixture
def setup():
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096
    machine = Machine(cfg)
    return machine, SimGC(machine, cfg.gc)


def test_bump_allocation_addresses(setup):
    _machine, gc = setup
    a = gc.allocate(32)
    b = gc.allocate(16)
    assert a == NURSERY_BASE
    assert b == a + 32


def test_minor_collection_on_full_nursery(setup):
    machine, gc = setup
    seen = []
    machine.add_annot_listener(lambda t, p: seen.append(t))
    for _ in range(200):
        gc.allocate(64)
    assert gc.minor_collections >= 2
    assert tags.GC_MINOR_START in seen
    assert tags.GC_MINOR_STOP in seen
    assert machine.instructions > 0


def test_nursery_resets_after_minor(setup):
    _machine, gc = setup
    for _ in range(64):
        gc.allocate(64)
    gc.minor_collect()
    assert gc.nursery_used == 0


def test_survival_sampling_dead_objects(setup):
    _machine, gc = setup
    # Allocate objects that die immediately: survival should be ~0.
    for _ in range(500):
        gc.allocate(64, obj=Dummy())
    rate = gc._survival_rate()
    assert rate < 0.2


def test_survival_sampling_live_objects(setup):
    _machine, gc = setup
    keep = []
    for _ in range(500):
        obj = Dummy()
        keep.append(obj)
        if gc.nursery_used + 64 > gc.nursery_size:
            break
        gc.allocate(64, obj=obj)
    assert gc._survival_rate() > 0.8


def test_live_allocations_cost_more(setup):
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096

    def run(keep_alive):
        machine = Machine(cfg)
        gc = SimGC(machine, cfg.gc)
        keep = []
        for _ in range(2000):
            obj = Dummy()
            if keep_alive:
                keep.append(obj)
            gc.allocate(64, obj=obj)
        return machine.cycles

    assert run(keep_alive=True) > run(keep_alive=False)


def test_major_collection_triggers(setup):
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096
    cfg.gc.min_major_threshold = 8192
    machine = Machine(cfg)
    gc = SimGC(machine, cfg.gc)
    keep = []
    seen = []
    machine.add_annot_listener(lambda t, p: seen.append(t))
    for _ in range(4000):
        obj = Dummy()
        keep.append(obj)
        gc.allocate(64, obj=obj)
    assert gc.major_collections >= 1
    assert tags.GC_MAJOR_START in seen
    assert gc.major_threshold >= cfg.gc.min_major_threshold


def test_major_threshold_grows():
    cfg = SystemConfig()
    cfg.gc.min_major_threshold = 1024
    machine = Machine(cfg)
    gc = SimGC(machine, cfg.gc)
    gc.old_bytes = 10_000
    gc.major_collect()
    assert gc.major_threshold == int(10_000 * 0.6 * cfg.gc.major_growth_factor)


def test_stats_keys(setup):
    _machine, gc = setup
    gc.allocate(10)
    stats = gc.stats()
    assert stats["total_allocations"] == 1
    assert stats["total_allocated_bytes"] == 10
    assert set(stats) == {
        "minor_collections", "major_collections", "total_allocated_bytes",
        "total_allocations", "bytes_surviving_minor", "old_bytes",
    }


def test_non_weakrefable_objects_tolerated(setup):
    _machine, gc = setup
    for _ in range(100):
        gc.allocate(16, obj=42)  # ints are not weak-referenceable
    assert gc.total_allocations == 100


def test_bulk_branches_miss_carry():
    machine = Machine(SystemConfig())
    machine.exec_bulk_branches(10, 0.05)
    machine.exec_bulk_branches(10, 0.05)
    # 20 branches * 0.05 = 1 miss accumulated via the carry.
    assert machine.branch_misses == 1
    assert machine.branches == 20
