"""rbigint: arbitrary-precision integers, from scratch.

A faithful miniature of RPython's ``rlib.rbigint``: sign/magnitude
representation with base-2^30 digits, schoolbook multiplication, and
Knuth Algorithm D division.  The Python implementation deliberately does
*not* lean on Python's own big integers for the arithmetic — digits are
machine-word-sized and every operation walks them, so the charged
instruction costs are proportional to real work (this is what makes
``pidigits`` JIT-call-bound, as in the paper's Table III and Figure 4).

All entry points are AOT functions (source tag ``L`` — RPython std lib),
called residually from JIT code exactly like PyPy's bigint arithmetic.
"""

from repro.core.errors import ReproError
from repro.interp.aot import aot
from repro.isa import insns
from repro.jit.semantics import INT_MAX, INT_MIN
from repro.rlib.costutil import charge_loop

SHIFT = 30
BASE = 1 << SHIFT
MASK = BASE - 1

_DIGIT_MIX = insns.mix(alu=4, load=2, store=1, br_bulk=1)
_MUL_DIGIT_MIX = insns.mix(mul=1, alu=5, load=3, store=1, br_bulk=1)
_DIV_DIGIT_MIX = insns.mix(mul=1, alu=5, load=3, store=1, br_bulk=1)


class BigInt(object):
    """Sign/magnitude big integer: ``sign`` in {-1, 0, 1}, LSB-first digits."""

    __slots__ = ("sign", "digits", "_addr")
    _size_ = 48
    _immutable_fields_ = ("sign", "digits")

    def __init__(self, sign, digits):
        self.sign = sign
        self.digits = digits

    # -- construction helpers (cost-free; used by the VM layer) ---------------

    @staticmethod
    def fromint(value):
        if value == 0:
            return BigInt(0, [])
        sign = 1
        if value < 0:
            sign = -1
            value = -value
        digits = []
        while value:
            digits.append(value & MASK)
            value >>= SHIFT
        return BigInt(sign, digits)

    def toint(self):
        """Back to a machine int; raises if out of the 64-bit range."""
        value = self._abs_value()
        if self.sign < 0:
            value = -value
        if value < INT_MIN or value > INT_MAX:
            raise ReproError("bigint too large for machine int")
        return value

    def _abs_value(self):
        value = 0
        for digit in reversed(self.digits):
            value = (value << SHIFT) | digit
        return value

    def fits_int(self):
        n = len(self.digits)
        if n <= 2:
            return True   # at most 60 bits
        if n > 3:
            return False  # more than 90 bits
        try:
            self.toint()
            return True
        except ReproError:
            return False

    def __repr__(self):
        return "<BigInt %s>" % _to_decimal(self)

    # NOTE: no __eq__/__lt__ — comparisons go through the AOT functions.


def _normalize(digits):
    while digits and digits[-1] == 0:
        digits.pop()
    return digits


def _cmp_abs(a_digits, b_digits):
    if len(a_digits) != len(b_digits):
        return 1 if len(a_digits) > len(b_digits) else -1
    for i in range(len(a_digits) - 1, -1, -1):
        if a_digits[i] != b_digits[i]:
            return 1 if a_digits[i] > b_digits[i] else -1
    return 0


def _add_abs(a_digits, b_digits):
    if len(a_digits) < len(b_digits):
        a_digits, b_digits = b_digits, a_digits
    result = []
    carry = 0
    for i in range(len(a_digits)):
        total = a_digits[i] + carry
        if i < len(b_digits):
            total += b_digits[i]
        result.append(total & MASK)
        carry = total >> SHIFT
    if carry:
        result.append(carry)
    return result


def _sub_abs(a_digits, b_digits):
    """|a| - |b|, requires |a| >= |b|."""
    result = []
    borrow = 0
    for i in range(len(a_digits)):
        total = a_digits[i] - borrow
        if i < len(b_digits):
            total -= b_digits[i]
        if total < 0:
            total += BASE
            borrow = 1
        else:
            borrow = 0
        result.append(total)
    return _normalize(result)


def _mul_abs(a_digits, b_digits):
    result = [0] * (len(a_digits) + len(b_digits))
    for i, a_digit in enumerate(a_digits):
        if not a_digit:
            continue
        carry = 0
        for j, b_digit in enumerate(b_digits):
            total = result[i + j] + a_digit * b_digit + carry
            result[i + j] = total & MASK
            carry = total >> SHIFT
        k = i + len(b_digits)
        while carry:
            total = result[k] + carry
            result[k] = total & MASK
            carry = total >> SHIFT
            k += 1
    return _normalize(result)


def _shift_left_abs(digits, count):
    word_shift, bit_shift = divmod(count, SHIFT)
    result = [0] * word_shift
    carry = 0
    for digit in digits:
        total = (digit << bit_shift) | carry
        result.append(total & MASK)
        carry = total >> SHIFT
    if carry:
        result.append(carry)
    return _normalize(result)


def _shift_right_abs(digits, count):
    word_shift, bit_shift = divmod(count, SHIFT)
    if word_shift >= len(digits):
        return []
    result = []
    digits = digits[word_shift:]
    for i in range(len(digits)):
        value = digits[i] >> bit_shift
        if bit_shift and i + 1 < len(digits):
            value |= (digits[i + 1] << (SHIFT - bit_shift)) & MASK
        result.append(value)
    return _normalize(result)


def _bitwise(a, b, op):
    """Digit-wise bitwise op with CPython's two's-complement walk.

    Negative operands are streamed as their two's complement (invert
    each digit, propagate an initial +1 carry), the per-digit op is
    applied, and a negative result is complemented back — all without
    ever materializing a host big integer.
    """
    neg_a = a.sign < 0
    neg_b = b.sign < 0
    if op == "&":
        neg_r = neg_a and neg_b
    elif op == "|":
        neg_r = neg_a or neg_b
    else:
        neg_r = neg_a != neg_b
    n = max(len(a.digits), len(b.digits)) + 1
    carry_a = carry_b = carry_r = 1
    digits = []
    for i in range(n):
        da = a.digits[i] if i < len(a.digits) else 0
        db = b.digits[i] if i < len(b.digits) else 0
        if neg_a:
            da = carry_a + (da ^ MASK)
            carry_a = da >> SHIFT
            da &= MASK
        if neg_b:
            db = carry_b + (db ^ MASK)
            carry_b = db >> SHIFT
            db &= MASK
        if op == "&":
            dr = da & db
        elif op == "|":
            dr = da | db
        else:
            dr = da ^ db
        if neg_r:
            dr = carry_r + (dr ^ MASK)
            carry_r = dr >> SHIFT
            dr &= MASK
        digits.append(dr)
    digits = _normalize(digits)
    if not digits:
        return BigInt(0, [])
    return BigInt(-1 if neg_r else 1, digits)


def _divrem_abs(a_digits, b_digits):
    """Knuth Algorithm D: (quotient, remainder) of |a| / |b|."""
    if _cmp_abs(a_digits, b_digits) < 0:
        return [], list(a_digits)
    if len(b_digits) == 1:
        return _divrem_abs_single(a_digits, b_digits[0])
    # D1: normalize so the top divisor digit >= BASE/2.
    shift = 0
    top = b_digits[-1]
    while top < BASE // 2:
        top <<= 1
        shift += 1
    u = _shift_left_abs(a_digits, shift)
    v = _shift_left_abs(b_digits, shift)
    n = len(v)
    u = u + [0]
    m = len(u) - n - 1
    quotient = [0] * (m + 1)
    v_top = v[-1]
    v_second = v[-2]
    for j in range(m, -1, -1):
        # D3: estimate the quotient digit.
        numerator = (u[j + n] << SHIFT) | u[j + n - 1]
        q_hat = numerator // v_top
        r_hat = numerator - q_hat * v_top
        while q_hat >= BASE or q_hat * v_second > ((r_hat << SHIFT) | u[j + n - 2]):
            q_hat -= 1
            r_hat += v_top
            if r_hat >= BASE:
                break
        # D4: multiply and subtract.
        borrow = 0
        carry = 0
        for i in range(n):
            product = q_hat * v[i] + carry
            carry = product >> SHIFT
            sub = u[j + i] - (product & MASK) - borrow
            if sub < 0:
                sub += BASE
                borrow = 1
            else:
                borrow = 0
            u[j + i] = sub
        sub = u[j + n] - carry - borrow
        if sub < 0:
            # D6: add back.
            sub += BASE
            q_hat -= 1
            carry2 = 0
            for i in range(n):
                total = u[j + i] + v[i] + carry2
                u[j + i] = total & MASK
                carry2 = total >> SHIFT
            sub = (sub + carry2) & MASK
        u[j + n] = sub
        quotient[j] = q_hat
    remainder = _shift_right_abs(_normalize(u[:n]), shift)
    return _normalize(quotient), remainder


def _divrem_abs_single(a_digits, divisor):
    quotient = [0] * len(a_digits)
    remainder = 0
    for i in range(len(a_digits) - 1, -1, -1):
        value = (remainder << SHIFT) | a_digits[i]
        quotient[i] = value // divisor
        remainder = value - quotient[i] * divisor
    return _normalize(quotient), ([remainder] if remainder else [])


def _make(sign, digits):
    if not digits:
        return BigInt(0, [])
    return BigInt(sign, digits)


def _signed_add(a, b, negate_b=False):
    b_sign = -b.sign if negate_b else b.sign
    if a.sign == 0:
        return _make(b_sign, list(b.digits))
    if b_sign == 0:
        return _make(a.sign, list(a.digits))
    if a.sign == b_sign:
        return _make(a.sign, _add_abs(a.digits, b.digits))
    comparison = _cmp_abs(a.digits, b.digits)
    if comparison == 0:
        return BigInt(0, [])
    if comparison > 0:
        return _make(a.sign, _sub_abs(a.digits, b.digits))
    return _make(b_sign, _sub_abs(b.digits, a.digits))


def _to_decimal(value):
    if value.sign == 0:
        return "0"
    chunks = []
    digits = list(value.digits)
    while digits:
        digits, remainder = _divrem_abs_single(digits, 10 ** 9)
        chunks.append(remainder[0] if remainder else 0)
    text = str(chunks[-1])
    for chunk in reversed(chunks[:-1]):
        text += str(chunk).rjust(9, "0")
    return ("-" if value.sign < 0 else "") + text


def int_to_decimal(value):
    """Decimal string of a host int, with no digit-count cap.

    The guest language has no int->str size limit (``_to_decimal``
    above never hits one), so engines that carry host ints (cpref,
    format.mod) must not inherit CPython's ``sys.int_max_str_digits``
    cap either.  Falls back to the same 9-digit chunking.
    """
    try:
        return str(value)
    except ValueError:
        negative = value < 0
        if negative:
            value = -value
        chunks = []
        while value:
            value, remainder = divmod(value, 10 ** 9)
            chunks.append(remainder)
        text = str(chunks[-1])
        for chunk in reversed(chunks[:-1]):
            text += str(chunk).rjust(9, "0")
        return ("-" if negative else "") + text


# -- AOT entry points --------------------------------------------------------------


def _ndigits(*values):
    return max(1, max(len(v.digits) for v in values))


@aot("rbigint.add", "L", "pure")
def big_add(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), _DIGIT_MIX)
    return _signed_add(a, b)


@aot("rbigint.sub", "L", "pure")
def big_sub(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), _DIGIT_MIX)
    return _signed_add(a, b, negate_b=True)


@aot("rbigint.mul", "L", "pure")
def big_mul(ctx, a, b):
    charge_loop(ctx, max(1, len(a.digits) * len(b.digits)), _MUL_DIGIT_MIX)
    if a.sign == 0 or b.sign == 0:
        return BigInt(0, [])
    return _make(a.sign * b.sign, _mul_abs(a.digits, b.digits))


@aot("rbigint.divmod", "L", "pure")
def big_divmod(ctx, a, b):
    """Floored divmod, Python semantics. Returns (q, r)."""
    if b.sign == 0:
        raise ZeroDivisionError
    charge_loop(
        ctx,
        max(1, len(a.digits) * max(1, len(b.digits))),
        _DIV_DIGIT_MIX,
    )
    q_digits, r_digits = _divrem_abs(a.digits, b.digits)
    q_sign = a.sign * b.sign
    quotient = _make(q_sign, q_digits)
    remainder = _make(a.sign, r_digits)
    if remainder.sign != 0 and remainder.sign != b.sign:
        # Floor adjustment: q -= 1; r += b.
        quotient = _signed_add(quotient, BigInt.fromint(1), negate_b=True)
        remainder = _signed_add(remainder, b)
    return quotient, remainder


@aot("rbigint.floordiv", "L", "pure")
def big_floordiv(ctx, a, b):
    return big_divmod.fn(ctx, a, b)[0]


@aot("rbigint.mod", "L", "pure")
def big_mod(ctx, a, b):
    return big_divmod.fn(ctx, a, b)[1]


@aot("rbigint.lshift", "L", "pure")
def big_lshift(ctx, a, count):
    charge_loop(ctx, _ndigits(a) + count // SHIFT, _DIGIT_MIX)
    if a.sign == 0:
        return BigInt(0, [])
    return _make(a.sign, _shift_left_abs(a.digits, count))


@aot("rbigint.rshift", "L", "pure")
def big_rshift(ctx, a, count):
    charge_loop(ctx, _ndigits(a), _DIGIT_MIX)
    if a.sign == 0:
        return BigInt(0, [])
    digits = _shift_right_abs(a.digits, count)
    result = _make(a.sign, digits)
    if a.sign < 0:
        # Arithmetic shift (floor): if any bits were shifted out, -1 more.
        lost = _sub_abs(
            a.digits, _shift_left_abs(digits, count)
        )
        if lost:
            result = _signed_add(result, BigInt.fromint(1), negate_b=True)
    return result


@aot("rbigint.and", "L", "pure")
def big_and(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), _DIGIT_MIX)
    return _bitwise(a, b, "&")


@aot("rbigint.or", "L", "pure")
def big_or(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), _DIGIT_MIX)
    return _bitwise(a, b, "|")


@aot("rbigint.xor", "L", "pure")
def big_xor(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), _DIGIT_MIX)
    return _bitwise(a, b, "^")


@aot("rbigint.eq", "L", "pure")
def big_eq(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), insns.mix(alu=3, load=2))
    return a.sign == b.sign and _cmp_abs(a.digits, b.digits) == 0


@aot("rbigint.lt", "L", "pure")
def big_lt(ctx, a, b):
    charge_loop(ctx, _ndigits(a, b), insns.mix(alu=3, load=2))
    if a.sign != b.sign:
        return a.sign < b.sign
    comparison = _cmp_abs(a.digits, b.digits)
    if a.sign >= 0:
        return comparison < 0
    return comparison > 0


@aot("rbigint.str", "L", "pure")
def big_str(ctx, a):
    charge_loop(ctx, max(1, len(a.digits) ** 2), _DIV_DIGIT_MIX)
    return _to_decimal(a)


@aot("rbigint.fromstr", "L", "pure")
def big_fromstr(ctx, text):
    charge_loop(ctx, max(1, len(text)), _MUL_DIGIT_MIX)
    sign = 1
    if text.startswith("-"):
        sign = -1
        text = text[1:]
    value = BigInt(0, [])
    ten = BigInt.fromint(10)
    for char in text:
        value = _make(
            1, _add_abs(
                _mul_abs(value.digits, ten.digits),
                BigInt.fromint(ord(char) - 48).digits,
            )
        )
    if not value.digits:
        return BigInt(0, [])
    value.sign = sign
    return value


@aot("rbigint.neg", "L", "pure")
def big_neg(ctx, a):
    ctx.charge(insns.mix(alu=2, load=1))
    return _make(-a.sign, list(a.digits))


@aot("rbigint.abs", "L", "pure")
def big_abs(ctx, a):
    ctx.charge(insns.mix(alu=2, load=1))
    return _make(abs(a.sign), list(a.digits))


@aot("rbigint.pow", "L", "pure")
def big_pow(ctx, a, exponent):
    """a ** exponent for a machine-int exponent >= 0."""
    result = BigInt.fromint(1)
    base = a
    e = exponent
    while e:
        if e & 1:
            result = big_mul.fn(ctx, result, base)
        e >>= 1
        if e:
            base = big_mul.fn(ctx, base, base)
    return result
