import pytest

from repro.core import tags
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.uarch import machine as machine_mod
from repro.uarch.machine import (
    Machine,
    SimulationLimitReached,
    delta,
    window_branch_miss_rate,
    window_branches_per_insn,
    window_ipc,
)


def make_machine(**kwargs):
    return Machine(SystemConfig(**kwargs))


def test_exec_mix_counts():
    m = make_machine()
    m.exec_mix(insns.mix(alu=10, load=5, store=2))
    assert m.instructions == 17
    assert m.loads == 0  # bulk loads are not addressed loads
    assert m.class_counts[insns.LOAD] == 5
    assert m.cycles > 17 / m.issue_width  # stalls charged


def test_ipc_bounded_by_issue_width():
    m = make_machine()
    m.exec_mix(insns.mix(alu=1000))
    assert m.ipc <= m.issue_width + 1e-9
    assert m.ipc > 0


def test_div_slower_than_alu():
    m1 = make_machine()
    m1.exec_mix(insns.mix(alu=100))
    m2 = make_machine()
    m2.exec_mix(insns.mix(div=100))
    assert m2.cycles > m1.cycles * 5


def test_branch_counters():
    m = make_machine()
    for _ in range(100):
        m.branch(0x10, True)
    assert m.branches == 100
    assert m.instructions == 100
    # Gshare warms one PHT entry per history state (~history-length misses).
    assert m.branch_misses <= 15


def test_mispredict_penalty_charged():
    biased = make_machine()
    for _ in range(200):
        biased.branch(0x10, True)
    import random

    rng = random.Random(1234)
    noisy = make_machine()
    for _ in range(200):
        noisy.branch(0x10, rng.random() < 0.5)
    assert noisy.cycles > biased.cycles


def test_indirect_uses_btb():
    import random

    rng = random.Random(7)
    m = make_machine()
    for _ in range(100):
        m.indirect(0x20, rng.randrange(1, 1 << 16))
    assert m.branch_misses >= 80


def test_call_ret_pairing():
    m = make_machine()
    for _ in range(50):
        m.call(0x100)
        m.ret(0x100)
    assert m.branch_misses == 0


def test_addressed_load_hits_cache_second_time():
    m = make_machine()
    m.load(0x4000)
    cycles_cold = m.cycles
    m.load(0x4000)
    cycles_warm = m.cycles - cycles_cold
    assert cycles_warm < cycles_cold


def test_store_counts():
    m = make_machine()
    m.store(0x4000)
    assert m.stores == 1
    assert m.class_counts[insns.STORE] == 1


def test_annotation_listener():
    m = make_machine()
    seen = []
    m.add_annot_listener(lambda tag, payload: seen.append((tag, payload)))
    m.annot(tags.DISPATCH, 7)
    assert seen == [(tags.DISPATCH, 7)]
    assert m.annotations == 1
    assert m.class_counts[insns.NOP_ANNOT] == 1


def test_remove_listener():
    m = make_machine()
    seen = []
    listener = lambda tag, payload: seen.append(tag)  # noqa: E731
    m.add_annot_listener(listener)
    m.annot(tags.DISPATCH)
    m.remove_annot_listener(listener)
    m.annot(tags.DISPATCH)
    assert len(seen) == 1


def test_max_instructions_limit():
    m = make_machine(max_instructions=50)
    with pytest.raises(SimulationLimitReached):
        for _ in range(100):
            m.exec_mix(insns.mix(alu=10))
    assert m.instructions >= 50


def test_counter_snapshot_and_delta():
    m = make_machine()
    before = m.counters()
    m.exec_mix(insns.mix(alu=10))
    m.branch(0, True)
    after = m.counters()
    window = delta(after, before)
    assert window.instructions == 11
    assert window.branches == 1
    assert window_ipc(window) > 0
    assert 0.0 <= window_branch_miss_rate(window) <= 1.0
    assert window_branches_per_insn(window) == pytest.approx(1 / 11)


def test_branch_mpki():
    m = make_machine()
    for i in range(1000):
        m.branch(i * 17, bool(i % 2))  # many PCs, noisy outcomes
    assert m.branch_mpki > 0


def test_unknown_predictor_rejected():
    with pytest.raises(Exception):
        Machine(SystemConfig(), predictor="oracle")


def test_predictor_kinds():
    for kind in ("gshare", "bimodal", "always_taken"):
        m = Machine(SystemConfig(), predictor=kind)
        m.branch(0, True)
        assert m.branches == 1


def test_window_helpers_zero_safe():
    empty = machine_mod.CounterSnapshot(0, 0.0, 0, 0, 0, 0, 0, 0)
    assert window_ipc(empty) == 0.0
    assert window_branch_miss_rate(empty) == 0.0
    assert window_branches_per_insn(empty) == 0.0
