"""Figure 7: composition of meta-traces by IR category."""

from conftest import save

from repro.harness import experiments


def test_fig7(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.fig7(quick=quick), rounds=1, iterations=1)
    save("fig7_categories.txt", text)

    mean = dict(rows)["MEAN"]
    # Paper shape: memory operations and guards are the two biggest
    # categories on average; both are substantial.
    assert mean.get("memop", 0) > 0.10
    assert mean.get("guard", 0) > 0.10
    # Call overhead is a major component (residual AOT calls).
    assert mean.get("call", 0) > 0.05
    # Even numeric suites: int+float never dominate the traces (paper:
    # "arithmetic does not constitute a significant portion").
    assert mean.get("int", 0) + mean.get("float", 0) < 0.5
