"""Backend equivalence: every compiled backend is bit-identical.

The compiled simulation backends — exec-specialized Python (``fast``)
and the cffi-compiled C runtime (``native``) — reimplement the machine
hot loop but must not change simulation results AT ALL.  Every counter
(including the float ``cycles`` accumulator, compared by ``==`` and by
``repr`` so not even the last mantissa bit may differ), every phase
window, the jitlog event stream, and guest stdout have to match the
reference machine, on real benchmarks and on generated difftest
programs alike — and independently of whether the quickening layer is
on, since quickening routes through different (batched) kernels.

Style of ``tests/interp/test_quicken_equivalence.py``: run the same
workload once per backend with only ``config.sim_backend`` flipped,
then compare the full measurement set field by field.  When no C
toolchain (or cffi) is present the native runs are skipped with the
recorded degradation reason; the fast backend has no dependencies and
always runs.
"""

import pytest

from repro import backend as backend_pkg
from repro.benchprogs import registry
from repro.difftest import oracle
from repro.difftest.generator import generate_program
from repro.harness import runner

NATIVE_REASON = backend_pkg.native_unavailable_reason()

COMPILED = ["fast"] + (
    ["native"] if NATIVE_REASON is None else
    [pytest.param("native",
                  marks=pytest.mark.skip(reason="native backend "
                                         "unavailable: " + NATIVE_REASON))])


def _measure(program_name, language, vm_kind, backend, quicken):
    program = (registry.py_program(program_name) if language == "python"
               else registry.rkt_program(program_name))
    result = runner.run_program(program, vm_kind, use_cache=False,
                                quicken=quicken, backend=backend)
    phases = tuple(
        (w.instructions, w.cycles, w.branches, w.branch_misses)
        for w in result.phase_windows) if result.phase_windows else None
    jitlog = (repr(result.jitlog_obj.events)
              if result.jitlog_obj is not None else None)
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cycles_repr": repr(result.cycles),
        "ipc": repr(result.ipc),
        "mpki": repr(result.mpki),
        "truncated": result.truncated,
        "bytecodes": result.bytecodes,
        "output": result.output,
        "phase_windows": phases,
        "phase_breakdown": tuple(sorted(result.phase_breakdown.items())),
        "jitlog": jitlog,
    }


@pytest.mark.parametrize("quicken", [True, False],
                         ids=["quicken", "noquicken"])
@pytest.mark.parametrize("program,language,vm_kind", [
    ("richards", "python", "pypy"),
    ("richards", "python", "pypy_nojit"),
    ("crypto_pyaes", "python", "cpython"),
    ("nbody", "python", "pypy"),
    ("fannkuch", "racket", "pycket"),
    ("fannkuch", "racket", "racket"),
])
def test_benchmarks_bit_identical(program, language, vm_kind, quicken):
    reference = _measure(program, language, vm_kind, "python", quicken)
    for backend in ("fast",) + (("native",) if NATIVE_REASON is None
                                else ()):
        compiled = _measure(program, language, vm_kind, backend, quicken)
        for field in reference:
            assert compiled[field] == reference[field], \
                "%s differs on the %s backend" % (field, backend)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("seed", range(9100, 9120))
def test_generated_programs_bit_identical(seed, backend):
    """Difftest-generated TinyPy programs: direct-mode interp runs on a
    compiled backend must agree with the reference on every machine
    counter, with quickening both on and off."""
    source = generate_program(seed)
    for quicken in (True, False):
        ref = oracle.run_interp(source, jit=False, quicken=quicken,
                                backend="python")
        run = oracle.run_interp(source, jit=False, quicken=quicken,
                                backend=backend,
                                name="backend-" + backend)
        assert run.output == ref.output
        assert (run.error is None) == (ref.error is None)
        assert run.truncated == ref.truncated
        for field in ("instructions", "cycles", "branches",
                      "branch_misses", "loads", "stores", "annotations"):
            a = getattr(ref.machine, field)
            b = getattr(run.machine, field)
            assert a == b, (field, quicken)
            assert repr(a) == repr(b), (field, quicken)
        assert tuple(ref.machine.class_counts) == \
            tuple(run.machine.class_counts)
        assert ref.tool.bcrate.bytecodes == run.tool.bcrate.bytecodes


def test_backends_actually_distinct():
    """The equivalence above must compare distinct implementations —
    guard against a silent fallback making it vacuous."""
    python_cls = backend_pkg.machine_class("python")
    fast_cls = backend_pkg.machine_class("fast")
    assert fast_cls is not python_cls
    assert fast_cls.backend == "fast"
    if NATIVE_REASON is None:
        native_cls = backend_pkg.machine_class("native")
        assert native_cls is not fast_cls
        assert native_cls.backend == "native"


def test_run_result_records_backend():
    """RunResult.backend reports the class that actually simulated, so
    a native->fast degradation is visible in stored measurements."""
    result = runner.run_program("fannkuch", "cpython",
                                n=registry.py_program("fannkuch").small_n,
                                use_cache=False, backend="fast")
    assert result.backend == "fast"
    payload = runner._result_to_payload(result)
    assert payload["backend"] == "fast"
    assert runner._result_from_payload(payload).backend == "fast"
