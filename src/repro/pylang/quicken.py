"""Quickened TinyPy superinstructions: run tables + silent micro-handlers.

At first execution of a code object (per VM, direct mode only) we scan
its bytecode for straight-line runs of *fusable* opcodes — ops whose
handler's entire machine footprint is a fixed tuple of block charges and
whose semantics touch nothing but the frame (no allocation, no branch
events, no JitDriver hooks).  Each run becomes one table entry replayed
by :meth:`Machine.quick_run` (all DISPATCH events and handler charges in
one batched call) followed by the micro-handlers below, which perform
the raw frame manipulation and charge nothing.

Bit-identity is structural: ``quick_run`` retires, in original order,
exactly the ``dispatch_event`` + ``exec_block`` sequence the unfused
loop would issue, and a fallback path replays that sequence literally
whenever listeners or an instruction limit need per-event visibility.
The dispatch pc hash ``0x200 + (prev_opcode << 3)`` depends on the
*previous* opcode, so every entry records the static predecessor op and
the dispatch loop only takes the fast path when the dynamic
``prev_opcode`` matches — a deopt landing, call return, or jump arriving
with a different predecessor falls back to the ordinary dispatch for
that bytecode and re-synchronizes.
"""

from repro.interp.objects import concrete
from repro.interp.quicken import find_runs
from repro.pylang import bytecode as bc
from repro.pylang.objects import w_False, w_True

# Opcodes whose ``arg`` is a branch-target pc.
JUMP_OPS = frozenset((
    bc.JUMP,
    bc.POP_JUMP_IF_FALSE,
    bc.POP_JUMP_IF_TRUE,
    bc.JUMP_IF_FALSE_OR_POP,
    bc.JUMP_IF_TRUE_OR_POP,
    bc.FOR_ITER,
))


# -- machine-silent micro-handlers ------------------------------------------
#
# Each mirrors the op_* handler in interp.py with every llops charge
# stripped (quick_run already retired them).  Raw values move untouched —
# like the unquickened frame ops, these must tolerate stale trace boxes
# (TBox left by an abandoned recording), so only COMPARE_IS/IS_NOT, which
# *inspect* values, go through concrete().

def _q_load_const(vm, frame, arg):
    # consts_of() is called lazily at execution time so any first-touch
    # wrap_const (gc.allocate_static) happens in the same program order
    # as the unquickened handler.
    frame.stack.append(vm.consts_of(frame.code)[arg])


def _q_load_fast(vm, frame, arg):
    frame.stack.append(frame.locals[arg])


def _q_store_fast(vm, frame, arg):
    frame.locals[arg] = frame.stack.pop()


def _q_pop_top(vm, frame, arg):
    frame.stack.pop()


def _q_dup_top(vm, frame, arg):
    frame.stack.append(frame.stack[-1])


def _q_dup_top_two(vm, frame, arg):
    stack = frame.stack
    stack.extend(stack[-2:])


def _q_rot_two(vm, frame, arg):
    stack = frame.stack
    stack[-1], stack[-2] = stack[-2], stack[-1]


def _q_rot_three(vm, frame, arg):
    stack = frame.stack
    stack.insert(-2, stack.pop())


def _q_compare_is(vm, frame, arg):
    stack = frame.stack
    w_b = stack.pop()
    w_a = stack.pop()
    stack.append(w_True if concrete(w_a) is concrete(w_b) else w_False)


def _q_compare_is_not(vm, frame, arg):
    stack = frame.stack
    w_b = stack.pop()
    w_a = stack.pop()
    stack.append(w_False if concrete(w_a) is concrete(w_b) else w_True)


_HANDLERS = {
    bc.LOAD_CONST: _q_load_const,
    bc.LOAD_FAST: _q_load_fast,
    bc.STORE_FAST: _q_store_fast,
    bc.POP_TOP: _q_pop_top,
    bc.DUP_TOP: _q_dup_top,
    bc.DUP_TOP_TWO: _q_dup_top_two,
    bc.ROT_TWO: _q_rot_two,
    bc.ROT_THREE: _q_rot_three,
    bc.COMPARE_IS: _q_compare_is,
    bc.COMPARE_IS_NOT: _q_compare_is_not,
}


def op_charges(llops):
    """opcode -> tuple of BlockDescrs its unquickened handler charges.

    Uses the already-interned llops blocks (no new machine state), in
    the exact order the op_* handler issues them: every stack/local
    touch is one ``_b_frame``; ptr_eq + is_true are one ``_b_misc``
    each.
    """
    f = llops._b_frame
    m = llops._b_misc
    return {
        bc.LOAD_CONST: (f,),
        bc.LOAD_FAST: (f, f),
        bc.STORE_FAST: (f, f),
        bc.POP_TOP: (f,),
        bc.DUP_TOP: (f, f),
        bc.DUP_TOP_TWO: (f, f, f, f),
        bc.ROT_TWO: (f, f, f, f),
        bc.ROT_THREE: (f, f, f, f, f, f),
        bc.COMPARE_IS: (f, f, m, m, f),
        bc.COMPARE_IS_NOT: (f, f, m, m, f),
    }


def build_run_table(vm, code):
    """Per-pc run table for one code object.

    ``table[pc]`` is ``None`` (no run starts here — including every
    interior pc of a run, so a jump into the middle of a fused region
    lands on the ordinary dispatch) or a tuple

        (items, pairs, next_pc, last_op, n_insns, expected_prev)

    where ``items`` feeds ``Machine.quick_run`` — per bytecode the
    dispatch pc hash, dispatch target, and handler charge blocks —
    ``pairs`` are (micro-handler, arg), ``next_pc``/``last_op`` restore
    the loop state after the run, ``n_insns`` is the total simulated
    instructions the run retires (for the max_instructions gate), and
    ``expected_prev`` is the static predecessor opcode the dynamic
    ``prev_opcode`` must match.
    """
    ops = code.ops
    args = code.args
    n = len(ops)
    charges = vm._quicken_charges
    b_dispatch = vm._b_dispatch
    jump_targets = set()
    merge_targets = set()
    for pc in range(n):
        if ops[pc] in JUMP_OPS:
            target = args[pc]
            jump_targets.add(target)
            if target <= pc:        # backward jump: JitDriver merge point
                merge_targets.add(target)
    table = [None] * n

    def fusable(pc):
        return ops[pc] in charges

    for start, end in find_runs(n, fusable, jump_targets, merge_targets):
        items = tuple(
            (0x200 + (ops[j - 1] << 3), ops[j], charges[ops[j]])
            for j in range(start, end))
        pairs = tuple(
            (_HANDLERS[ops[j]], args[j]) for j in range(start, end))
        n_insns = sum(
            2 + b_dispatch.n_insns + sum(blk.n_insns for blk in blocks)
            for _hash, _op, blocks in items)
        table[start] = (items, pairs, end, ops[end - 1], n_insns,
                        ops[start - 1])
    return table


def build_run_programs(vm, table):
    """Per-pc event programs wrapping the run table's ``quick_run``
    calls (``config.eventprog``): same tag, dispatch block, items and
    ``n_insns`` as the direct call each replaces, so replay is
    bit-identical on every backend.  Parallel to ``table`` (None where
    no run starts) so the dispatch loop indexes both with the run pc.
    """
    from repro.backend.eventprog import quick_run_program
    from repro.core import tags

    b_dispatch = vm._b_dispatch
    programs = [None] * len(table)
    for pc, entry in enumerate(table):
        if entry is not None:
            programs[pc] = quick_run_program(tags.DISPATCH, b_dispatch,
                                             entry[0], entry[4],
                                             label="quicken-run")
    if vm.ctx.config.verify:
        from repro.analysis import validate_run_programs

        validate_run_programs(vm, table, programs).raise_if_errors(
            "quicken translation validation")
    return programs
