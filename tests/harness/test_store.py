"""Persistent result store: keying, invalidation, and warm-table reuse."""

import os

import pytest

from repro.benchprogs import registry
from repro.harness import experiments, runner, store


@pytest.fixture
def tmp_store(tmp_path):
    old_dir = os.environ.get("REPRO_STORE_DIR")
    old_enabled = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE_DIR"] = str(tmp_path)
    os.environ.pop("REPRO_STORE", None)
    store.reset_default_store()
    runner.clear_cache()
    yield store.default_store()
    if old_dir is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:
        os.environ["REPRO_STORE_DIR"] = old_dir
    if old_enabled is not None:
        os.environ["REPRO_STORE"] = old_enabled
    store.reset_default_store()
    runner.clear_cache()


def test_roundtrip_and_key_mismatch(tmp_store):
    key = ("tinypy", "prog", "cpython", 2, False, 0, (), "gshare")
    payload = {"instructions": 123, "cycles": 4.5}
    assert tmp_store.get(key) is None
    tmp_store.put(key, payload)
    assert tmp_store.get(key) == payload
    other = key[:3] + (3,) + key[4:]
    assert tmp_store.get(other) is None
    assert tmp_store.puts == 1
    assert tmp_store.hits == 1


def test_run_program_restores_from_store(tmp_store):
    first = runner.run_program("crypto_pyaes", "cpython", n=2,
                               language="python")
    sims = runner.simulation_count()
    runner.clear_cache()
    store.reset_default_store()  # fresh store object, same directory
    restored = runner.run_program("crypto_pyaes", "cpython", n=2,
                                  language="python")
    assert runner.simulation_count() == sims  # no new simulation
    assert restored.instructions == first.instructions
    assert repr(restored.cycles) == repr(first.cycles)
    assert restored.output == first.output
    assert store.default_store().hits == 1


def test_table1_second_invocation_simulates_nothing(tmp_store):
    programs = [registry.py_program("richards")]
    experiments.table1(quick=True, programs=programs)
    sims_cold = runner.simulation_count()
    assert sims_cold >= 3  # cpython, pypy_nojit, pypy

    runner.clear_cache()
    store.reset_default_store()  # drop in-process state, keep the disk
    warm_store = store.default_store()
    rows, _text = experiments.table1(quick=True, programs=programs)

    assert runner.simulation_count() == sims_cold  # zero new simulations
    assert warm_store.hits >= 3
    assert rows and rows[0]["benchmark"] == "richards"
