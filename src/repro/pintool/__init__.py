"""Pin-style interceptor for cross-layer annotations."""
