"""TinyPy builtins: global functions and built-in type methods."""

from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.isa import insns
from repro.pylang.objects import (
    W_BigInt,
    W_Dict,
    W_Float,
    W_Instance,
    W_Int,
    W_List,
    W_Range,
    W_Set,
    W_Str,
    W_Tuple,
    w_False,
    w_None,
    w_True,
    wrap_bool,
)
from repro.pylang.ops import is_intish
from repro.rlib import rbigint, rstr
from repro.rlib.costutil import charge_loop
from repro.rlib.rordereddict import ll_dict_values


@aot("pypy.write_stdout", "M", "any")
def _write_stdout(ctx, output_list, text):
    charge_loop(ctx, max(1, len(text) // 8 + 1),
                insns.mix(load=1, store=1, alu=1))
    output_list.append(text)
    return None


@aot("IntegerListStrategy.sum", "I", "readonly")
def _sum_ints(ctx, storage):
    items = storage.items
    charge_loop(ctx, max(1, len(items)), insns.mix(load=1, alu=2))
    total = 0
    for value in items:
        total += value
    return total


@aot("FloatListStrategy.minmax", "I", "readonly")
def _minmax_raw(ctx, storage, want_max):
    items = storage.items
    charge_loop(ctx, max(1, len(items)), insns.mix(load=1, alu=2))
    return max(items) if want_max else min(items)


# -- builtin global functions ------------------------------------------------------
# Each takes (vm, args_w) and returns a W_ value.


def bi_print(vm, args_w):
    llops = vm.llops
    text = ""
    for i, w_arg in enumerate(args_w):
        part = vm.str_of(w_arg)  # may be a traced (boxed) string
        if i:
            text = llops.unicode_concat(text, " ")
        text = llops.unicode_concat(text, part)
    vm.llops.residual_call(_write_stdout, vm.output, text)
    return w_None


def bi_range(vm, args_w):
    llops = vm.llops
    if len(args_w) == 1:
        start, stop, step = 0, vm.int_val(args_w[0]), 1
    elif len(args_w) == 2:
        start = vm.int_val(args_w[0])
        stop = vm.int_val(args_w[1])
        step = 1
    elif len(args_w) == 3:
        start = vm.int_val(args_w[0])
        stop = vm.int_val(args_w[1])
        step = vm.int_val(args_w[2])
    else:
        raise GuestError("range() takes 1-3 arguments")
    return llops.new(W_Range, start=start, stop=stop, step=step)


def bi_len(vm, args_w):
    llops = vm.llops
    w_obj = args_w[0]
    cls = llops.cls_of(w_obj)
    if cls is W_List:
        return vm.wrap_int(vm.list_len_raw(w_obj))
    if cls is W_Str:
        return vm.wrap_int(llops.unicodelen(vm.str_val(w_obj)))
    if cls is W_Dict or cls is W_Set:
        return vm.wrap_int(vm.dict_len(w_obj))
    if cls is W_Tuple:
        return vm.wrap_int(vm.tuple_len_raw(w_obj))
    if cls is W_Range:
        start = llops.getfield(w_obj, "start")
        stop = llops.getfield(w_obj, "stop")
        step = llops.getfield(w_obj, "step")
        span = llops.int_sub(stop, start)
        if llops.is_true(llops.int_gt(step, 0)):
            adjusted = llops.int_add(span, llops.int_sub(step, 1))
        else:
            adjusted = llops.int_add(span, llops.int_add(step, 1))
        length = llops.int_floordiv(adjusted, step)
        if llops.is_true(llops.int_lt(length, 0)):
            return vm.wrap_int(0)
        return vm.wrap_int(length)
    raise GuestError("object has no len()")


def bi_abs(vm, args_w):
    llops = vm.llops
    w_obj = args_w[0]
    cls = llops.cls_of(w_obj)
    if is_intish(cls):
        value = vm.int_val(w_obj)
        if llops.is_true(llops.int_lt(value, 0)):
            return vm.unary_neg(w_obj)
        return vm.wrap_int(value)
    if cls is W_Float:
        return vm.wrap_float(llops.float_abs(vm.float_val(w_obj)))
    if cls is W_BigInt:
        return vm.wrap_big(llops.residual_call(
            rbigint.big_abs, vm.big_val(w_obj)))
    raise GuestError("bad operand for abs()")


def _minmax(vm, args_w, opname, want_max):
    llops = vm.llops
    if len(args_w) == 1:
        w_seq = args_w[0]
        cls = llops.cls_of(w_seq)
        if cls is W_List:
            strategy = vm.list_strategy(w_seq)
            storage = vm.list_storage(w_seq)
            if strategy == "int":
                raw = llops.residual_call(_minmax_raw, storage, want_max)
                return vm.wrap_int(raw)
            length = llops.promote(vm.list_len_raw(w_seq))
            if length == 0:
                raise GuestError("min()/max() of empty sequence")
            w_best = vm.list_getitem(w_seq, 0)
            for i in range(1, length):
                w_item = vm.list_getitem(w_seq, i)
                if vm.is_true_w(vm.compare(opname, w_item, w_best)):
                    w_best = w_item
            return w_best
        raise GuestError("min()/max() expects a list or 2+ args")
    w_best = args_w[0]
    for w_item in args_w[1:]:
        if vm.is_true_w(vm.compare(opname, w_item, w_best)):
            w_best = w_item
    return w_best


def bi_min(vm, args_w):
    return _minmax(vm, args_w, "lt", want_max=False)


def bi_max(vm, args_w):
    return _minmax(vm, args_w, "gt", want_max=True)


def bi_sum(vm, args_w):
    llops = vm.llops
    w_seq = args_w[0]
    cls = llops.cls_of(w_seq)
    if cls is not W_List:
        raise GuestError("sum() expects a list")
    strategy = vm.list_strategy(w_seq)
    if strategy == "int" and len(args_w) == 1:
        storage = vm.list_storage(w_seq)
        return vm.wrap_int(llops.residual_call(_sum_ints, storage))
    # General path: guest-level loop (bounded by a promoted length).
    length = llops.promote(vm.list_len_raw(w_seq))
    w_total = args_w[1] if len(args_w) > 1 else vm.wrap_int(0)
    for i in range(length):
        w_total = vm.binary_add(w_total, vm.list_getitem(w_seq, i))
    return w_total


def bi_int(vm, args_w):
    llops = vm.llops
    w_obj = args_w[0]
    cls = llops.cls_of(w_obj)
    if is_intish(cls):
        return vm.wrap_int(vm.int_val(w_obj))
    if cls is W_Float:
        f = vm.float_val(w_obj)
        # f - f is 0.0 for every finite float and NaN for +-inf/NaN.
        nonfinite = llops.float_ne(llops.float_sub(f, f), 0.0)
        if llops.is_true(nonfinite):
            raise GuestError(
                "cannot convert float infinity or NaN to integer")
        return vm.wrap_int(llops.cast_float_to_int(f))
    if cls is W_Str:
        return vm.wrap_int(llops.residual_call(
            rstr.string_to_int, vm.str_val(w_obj)))
    if cls is W_BigInt:
        return w_obj
    raise GuestError("int() argument invalid")


def bi_float(vm, args_w):
    llops = vm.llops
    w_obj = args_w[0]
    cls = llops.cls_of(w_obj)
    if cls is W_Float:
        return w_obj
    if is_intish(cls):
        return vm.wrap_float(llops.cast_int_to_float(vm.int_val(w_obj)))
    if cls is W_Str:
        return vm.wrap_float(llops.residual_call(
            rstr.string_to_float, vm.str_val(w_obj)))
    raise GuestError("float() argument invalid")


def bi_str(vm, args_w):
    return vm.wrap_str(vm.str_of(args_w[0]))


def bi_repr(vm, args_w):
    return vm.wrap_str(vm.repr_of(args_w[0]))


def bi_bool(vm, args_w):
    return wrap_bool(vm.is_true_w(args_w[0]))


def bi_chr(vm, args_w):
    value = vm.int_val(args_w[0])
    value = vm.llops.promote(value) if False else value
    # chr on a red int: residual-free, 1-char table semantics.
    return vm.wrap_str(vm.llops.residual_call(_chr_fn, value))


@aot("rstr.ll_chr", "R", "pure")
def _chr_fn(ctx, value):
    ctx.charge(insns.mix(alu=2))
    return chr(value)


@aot("rstr.ll_ord", "R", "pure")
def _ord_fn(ctx, text):
    ctx.charge(insns.mix(alu=2, load=1))
    if len(text) != 1:
        raise GuestError("ord() expects a single character")
    return ord(text)


def bi_ord(vm, args_w):
    return vm.wrap_int(vm.llops.residual_call(
        _ord_fn, vm.str_val(args_w[0])))


def bi_list(vm, args_w):
    if not args_w:
        return vm.new_list([])
    w_iter = vm.get_iter(args_w[0])
    w_result = vm.new_list([])
    while True:
        w_item = vm.iter_next(w_iter)
        if w_item is None:
            break
        vm.list_append(w_result, w_item)
    return w_result


def bi_tuple(vm, args_w):
    if not args_w:
        return vm.new_tuple([])
    values = []
    w_iter = vm.get_iter(args_w[0])
    while True:
        w_item = vm.iter_next(w_iter)
        if w_item is None:
            break
        values.append(w_item)
    return vm.new_tuple(values)


def bi_dict(vm, args_w):
    return vm.new_dict([])


def bi_set(vm, args_w):
    if not args_w:
        return vm.new_set([])
    w_result = vm.new_set([])
    w_iter = vm.get_iter(args_w[0])
    while True:
        w_item = vm.iter_next(w_iter)
        if w_item is None:
            break
        vm.set_add(w_result, w_item)
    return w_result


def bi_isinstance(vm, args_w):
    llops = vm.llops
    w_obj, w_class = args_w
    cls = llops.cls_of(w_obj)
    if cls is not W_Instance:
        return w_False
    shape = llops.promote(llops.getfield(w_obj, "shape"))
    w_target = llops.promote(w_class)
    current = shape.w_class
    while current is not None:
        if current is w_target:
            return w_True
        current = current.w_base
    return w_False


def bi_annotate(vm, args_w):
    """Application-level cross-layer annotation (the paper's app layer)."""
    payload = vm.int_val(args_w[0]) if args_w else 0
    vm.llops.app_annotation(vm.llops.promote(payload))
    return w_None


BUILTIN_FUNCTIONS = {
    "print": bi_print,
    "range": bi_range,
    "len": bi_len,
    "abs": bi_abs,
    "min": bi_min,
    "max": bi_max,
    "sum": bi_sum,
    "int": bi_int,
    "float": bi_float,
    "str": bi_str,
    "repr": bi_repr,
    "bool": bi_bool,
    "chr": bi_chr,
    "ord": bi_ord,
    "list": bi_list,
    "tuple": bi_tuple,
    "dict": bi_dict,
    "set": bi_set,
    "isinstance": bi_isinstance,
    "__annot__": bi_annotate,
}


# -- built-in type methods -------------------------------------------------------------


def m_list_append(vm, args_w):
    vm.list_append(args_w[0], args_w[1])
    return w_None


def m_list_pop(vm, args_w):
    from repro.pylang.collections import _storage_pop

    w_list = args_w[0]
    llops = vm.llops
    length = vm.list_len_raw(w_list)
    if len(args_w) > 1:
        index = vm.normalize_index(vm.int_val(args_w[1]), length,
                                   "pop index")
    else:
        index = llops.int_sub(length, 1)
        bad = llops.int_lt(index, 0)
        if llops.is_true(bad):
            raise GuestError("pop from empty list")
    storage = vm.list_storage(w_list)
    raw = llops.residual_call(_storage_pop, storage, index)
    if vm.list_strategy(w_list) == "int":
        return vm.wrap_int(raw)
    return raw


def m_list_insert(vm, args_w):
    from repro.pylang.objects import STRATEGY_INT

    w_list, w_index, w_value = args_w
    llops = vm.llops
    strategy = vm.list_strategy(w_list)
    if strategy == STRATEGY_INT and llops.cls_of(w_value) is not W_Int:
        vm.list_generalize(w_list)
        strategy = "object"
    storage = vm.list_storage(w_list)
    raw = vm.int_val(w_value) if strategy == "int" else w_value
    llops.residual_call(_storage_insert, storage,
                        vm.int_val(w_index), raw)
    return w_None


@aot("rlist.ll_storage_insert", "R", "any")
def _storage_insert(ctx, storage, index, value):
    items = storage.items
    charge_loop(ctx, max(1, len(items) - index),
                insns.mix(load=1, store=1, alu=1))
    items.insert(index, value)
    return None


def m_list_extend(vm, args_w):
    w_list, w_other = args_w
    w_iter = vm.get_iter(w_other)
    while True:
        w_item = vm.iter_next(w_iter)
        if w_item is None:
            break
        vm.list_append(w_list, w_item)
    return w_None


def m_list_reverse(vm, args_w):
    storage = vm.list_storage(args_w[0])
    vm.llops.residual_call(_storage_reverse, storage)
    return w_None


@aot("rlist.ll_storage_reverse", "R", "any")
def _storage_reverse(ctx, storage):
    charge_loop(ctx, max(1, len(storage.items) // 2),
                insns.mix(load=2, store=2))
    storage.items.reverse()
    return None


def m_list_sort(vm, args_w):
    w_list = args_w[0]
    strategy = vm.list_strategy(w_list)
    storage = vm.list_storage(w_list)
    if strategy == "int":
        vm.llops.residual_call(_sort_ints, storage)
        return w_None
    # Object sort: guest comparisons through a host callback.
    def lt(w_a, w_b):
        return vm.is_true_w(vm.compare("lt", w_a, w_b))

    vm.llops.residual_call(_sort_objects, storage, lt)
    return w_None


@aot("listsort.sort_ints", "L", "any")
def _sort_ints(ctx, storage):
    items = storage.items
    n = len(items)
    if n > 1:
        charge_loop(ctx, n * max(1, n.bit_length() - 1),
                    insns.mix(load=2, alu=3, store=1))
    items.sort()
    return None


@aot("listsort.sort", "L", "any")
def _sort_objects(ctx, storage, lt_fn):
    from repro.rlib.rlist import _merge_sort

    items = storage.items
    n = len(items)
    if n > 1:
        charge_loop(ctx, n * max(1, n.bit_length() - 1),
                    insns.mix(load=2, alu=3, store=1))
    _merge_sort(items, 0, n, lt_fn, [None] * n)
    return None


def m_list_index(vm, args_w):
    w_list, w_value = args_w[0], args_w[1]
    length = vm.llops.promote(vm.list_len_raw(w_list))
    for i in range(length):
        if vm.eq_w(vm.list_getitem(w_list, i), w_value):
            return vm.wrap_int(i)
    raise GuestError("ValueError: value not in list")


def m_list_remove(vm, args_w):
    from repro.pylang.collections import _storage_pop

    w_list, w_value = args_w
    length = vm.llops.promote(vm.list_len_raw(w_list))
    for i in range(length):
        if vm.eq_w(vm.list_getitem(w_list, i), w_value):
            storage = vm.list_storage(w_list)
            vm.llops.residual_call(_storage_pop, storage, i)
            return w_None
    raise GuestError("ValueError: value not in list")


def m_list_count(vm, args_w):
    w_list, w_value = args_w
    length = vm.llops.promote(vm.list_len_raw(w_list))
    count = 0
    for i in range(length):
        if vm.eq_w(vm.list_getitem(w_list, i), w_value):
            count += 1
    return vm.wrap_int(count)


def m_dict_get(vm, args_w):
    w_default = args_w[2] if len(args_w) > 2 else w_None
    return vm.dict_get(args_w[0], args_w[1], w_default)


def m_dict_keys(vm, args_w):
    llops = vm.llops
    rdict = llops.getfield(args_w[0], "rdict")
    pairs = llops.residual_call(ll_dict_values, rdict)
    return _pairs_to_list(vm, pairs, "keys")


def m_dict_values(vm, args_w):
    llops = vm.llops
    rdict = llops.getfield(args_w[0], "rdict")
    pairs = llops.residual_call(ll_dict_values, rdict)
    return _pairs_to_list(vm, pairs, "values")


def m_dict_items(vm, args_w):
    llops = vm.llops
    rdict = llops.getfield(args_w[0], "rdict")
    pairs = llops.residual_call(ll_dict_values, rdict)
    return _pairs_to_list(vm, pairs, "items")


def _pairs_to_list(vm, pairs, mode):
    from repro.pylang.instances import _raw_get_i, _raw_len_i

    llops = vm.llops
    length = llops.promote(llops.residual_call(_raw_len_i, pairs))
    w_result = vm.new_list([])
    for i in range(length):
        pair = llops.residual_call(_raw_get_i, pairs, i)
        if mode == "keys":
            vm.list_append(w_result, vm.pair_key(pair))
        elif mode == "values":
            vm.list_append(w_result, vm.pair_value(pair))
        else:
            vm.list_append(w_result, vm.new_tuple(
                [vm.pair_key(pair), vm.pair_value(pair)]))
    return w_result


def m_dict_pop(vm, args_w):
    w_dict, w_key = args_w[0], args_w[1]
    w_value = vm.dict_get(w_dict, w_key,
                          args_w[2] if len(args_w) > 2 else None)
    if w_value is None:
        raise GuestError("KeyError in dict.pop()")
    from repro.rlib.rordereddict import ll_dict_delitem

    rdict = vm.llops.getfield(w_dict, "rdict")
    vm.llops.residual_call(ll_dict_delitem, rdict, vm.dict_key(w_key))
    return w_value


def m_dict_setdefault(vm, args_w):
    w_dict, w_key, w_default = args_w
    w_value = vm.dict_get(w_dict, w_key, None)
    if w_value is None:
        vm.dict_setitem(w_dict, w_key, w_default)
        return w_default
    return w_value


def m_set_add(vm, args_w):
    vm.set_add(args_w[0], args_w[1])
    return w_None


@aot("rstr.ll_join", "R", "readonly")
def _join_str_storage(ctx, separator, storage):
    items = storage.items
    total = sum(len(w.strval) for w in items) + max(0, len(items) - 1)
    charge_loop(ctx, max(1, total), insns.mix(load=1, store=1, alu=1))
    return separator.join(w.strval for w in items)


def m_str_join(vm, args_w):
    w_sep, w_list = args_w
    llops = vm.llops
    if vm.list_strategy(w_list) != "object":
        if llops.is_true(llops.int_is_true(vm.list_len_raw(w_list))):
            raise GuestError("join() expects strings")
        return vm.wrap_str("")
    storage = vm.list_storage(w_list)
    return vm.wrap_str(llops.residual_call(
        _join_str_storage, vm.str_val(w_sep), storage))


def m_str_split(vm, args_w):
    llops = vm.llops
    text = vm.str_val(args_w[0])
    separator = vm.str_val(args_w[1]) if len(args_w) > 1 else None
    parts = llops.residual_call(rstr.ll_split, text, separator)
    w_result = vm.new_list([])
    from repro.pylang.instances import _raw_get_i, _raw_len_i

    n = llops.promote(llops.residual_call(_raw_len_i, parts))
    for i in range(n):
        raw = llops.residual_call(_raw_get_i, parts, i)
        vm.list_append(w_result, vm.wrap_str(raw))
    return w_result


def _str_method(rstr_fn, wrap="str"):
    def method(vm, args_w):
        llops = vm.llops
        raw_args = [vm.str_val(args_w[0])]
        for w_arg in args_w[1:]:
            cls = llops.cls_of(w_arg)
            if cls is W_Str:
                raw_args.append(vm.str_val(w_arg))
            else:
                raw_args.append(vm.int_val(w_arg))
        result = llops.residual_call(rstr_fn, *raw_args)
        if wrap == "str":
            return vm.wrap_str(result)
        if wrap == "int":
            return vm.wrap_int(result)
        return wrap_bool(llops.is_true(result))
    return method


def m_str_find(vm, args_w):
    llops = vm.llops
    text = vm.str_val(args_w[0])
    needle = vm.str_val(args_w[1])
    start = vm.int_val(args_w[2]) if len(args_w) > 2 else 0
    return vm.wrap_int(llops.residual_call(
        rstr.ll_find, text, needle, start))


TYPE_METHODS = {
    W_List: {
        "append": m_list_append,
        "pop": m_list_pop,
        "insert": m_list_insert,
        "extend": m_list_extend,
        "reverse": m_list_reverse,
        "sort": m_list_sort,
        "index": m_list_index,
        "remove": m_list_remove,
        "count": m_list_count,
    },
    W_Dict: {
        "get": m_dict_get,
        "keys": m_dict_keys,
        "values": m_dict_values,
        "items": m_dict_items,
        "pop": m_dict_pop,
        "setdefault": m_dict_setdefault,
    },
    W_Set: {
        "add": m_set_add,
    },
    W_Str: {
        "join": m_str_join,
        "split": m_str_split,
        "strip": _str_method(rstr.ll_strip),
        "lower": _str_method(rstr.ll_lower),
        "upper": _str_method(rstr.ll_upper),
        "replace": _str_method(rstr.ll_replace),
        "find": m_str_find,
        "startswith": _str_method(rstr.ll_startswith, wrap="bool"),
        "endswith": _str_method(rstr.ll_endswith, wrap="bool"),
    },
}
