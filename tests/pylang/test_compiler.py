"""TinyPy compiler unit tests: code shape, name resolution, errors."""

import pytest

from repro.core.errors import CompilationError
from repro.pylang import bytecode as bc
from repro.pylang.compiler import compile_source


def ops_of(code):
    return [bc.OP_NAMES[op] for op in code.ops]


def test_simple_expression():
    code = compile_source("x = 1 + 2")
    names = ops_of(code)
    assert "BINARY_ADD" in names
    assert "STORE_GLOBAL" in names  # module level: all names global
    assert names[-1] == "RETURN_VALUE"


def test_function_locals_vs_globals():
    code = compile_source('''
g = 5
def f(a):
    b = a + g
    return b
''')
    spec = next(c for c in code.consts
                if isinstance(c, bc.FunctionSpec))
    inner = spec.code
    assert inner.argcount == 1
    assert "a" in inner.varnames and "b" in inner.varnames
    inner_ops = ops_of(inner)
    assert "LOAD_FAST" in inner_ops
    assert "LOAD_GLOBAL" in inner_ops  # g


def test_global_statement():
    code = compile_source('''
def f():
    global counter
    counter = 1
''')
    spec = next(c for c in code.consts
                if isinstance(c, bc.FunctionSpec))
    assert "STORE_GLOBAL" in ops_of(spec.code)
    assert "counter" not in spec.code.varnames


def test_const_dedup():
    code = compile_source("a = 7\nb = 7\nc = 7.0")
    sevens = [c for c in code.consts if c == 7 and isinstance(c, int)]
    assert len(sevens) == 1
    assert 7.0 in code.consts  # float 7.0 distinct from int 7


def test_jump_targets_patched():
    code = compile_source('''
x = 0
while x < 10:
    x = x + 1
''')
    for op, arg in zip(code.ops, code.args):
        if bc.OP_NAMES[op] in ("JUMP", "POP_JUMP_IF_FALSE"):
            assert 0 <= arg <= len(code.ops)


def test_for_loop_shape():
    code = compile_source("for i in range(3):\n    pass")
    names = ops_of(code)
    assert "GET_ITER" in names
    assert "FOR_ITER" in names


def test_class_spec():
    code = compile_source('''
class A:
    def m(self, x=3):
        return x
''')
    spec = next(c for c in code.consts if isinstance(c, bc.ClassSpec))
    assert spec.name == "A"
    assert spec.base_name is None
    method_name, method_code, defaults = spec.methods[0]
    assert method_name == "m"
    assert defaults == [3]


def test_class_with_base():
    code = compile_source("class A:\n    pass\nclass B(A):\n    pass")
    specs = [c for c in code.consts if isinstance(c, bc.ClassSpec)]
    assert specs[1].base_name == "A"


def test_dis_output():
    code = compile_source("x = 1")
    text = code.dis()
    assert "LOAD_CONST" in text
    assert "STORE_GLOBAL" in text


@pytest.mark.parametrize("source,fragment", [
    ("x = yield 1", "expression"),
    ("def f(*args):\n    pass", "*args"),
    ("f(x=1)", "keyword"),
    ("class A(B, C):\n    pass", "multiple inheritance"),
    ("a < b < c", "chained"),
    ("x = lambda: 1", "Lambda"),
    ("import os", "Import"),
    ("while True:\n    pass\nelse:\n    pass", "while-else"),
    ("return 1", "return at module level"),
    ("break", "break outside loop"),
])
def test_unsupported_constructs(source, fragment):
    with pytest.raises(CompilationError) as excinfo:
        compile_source(source)
    assert fragment.lower() in str(excinfo.value).lower()


def test_syntax_error():
    with pytest.raises(CompilationError):
        compile_source("def (:")


def test_listcomp_desugars_to_loop():
    code = compile_source("def f(xs):\n    return [x * 2 for x in xs]")
    spec = next(c for c in code.consts
                if isinstance(c, bc.FunctionSpec))
    names = ops_of(spec.code)
    assert "LIST_APPEND" in names
    assert "FOR_ITER" in names


def test_aug_assign_forms():
    code = compile_source('''
class A:
    pass
a = A()
a.x = 1
a.x += 2
xs = [1]
xs[0] += 5
''')
    names = ops_of(code)
    assert "DUP_TOP" in names
    assert "DUP_TOP_TWO" in names
    assert "ROT_THREE" in names
