import pytest

from repro.core import tags
from repro.core.config import SystemConfig
from repro.gc.heap import NURSERY_BASE, SimGC
from repro.uarch.machine import Machine


class Dummy:
    """A weak-referenceable allocation stand-in."""


@pytest.fixture
def setup():
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096
    machine = Machine(cfg)
    return machine, SimGC(machine, cfg.gc)


def test_bump_allocation_addresses(setup):
    _machine, gc = setup
    a = gc.allocate(32)
    b = gc.allocate(16)
    assert a == NURSERY_BASE
    assert b == a + 32


def test_minor_collection_on_full_nursery(setup):
    machine, gc = setup
    seen = []
    machine.add_annot_listener(lambda t, p: seen.append(t))
    for _ in range(200):
        gc.allocate(64)
    assert gc.minor_collections >= 2
    assert tags.GC_MINOR_START in seen
    assert tags.GC_MINOR_STOP in seen
    assert machine.instructions > 0


def test_nursery_resets_after_minor(setup):
    _machine, gc = setup
    for _ in range(64):
        gc.allocate(64)
    gc.minor_collect()
    assert gc.nursery_used == 0


def test_survival_sampling_dead_objects(setup):
    _machine, gc = setup
    # Allocate objects that die immediately: survival should be ~0.
    for _ in range(500):
        gc.allocate(64, obj=Dummy())
    rate = gc._survival_rate()
    assert rate < 0.2


def test_survival_sampling_live_objects(setup):
    _machine, gc = setup
    keep = []
    for _ in range(500):
        obj = Dummy()
        keep.append(obj)
        if gc.nursery_used + 64 > gc.nursery_size:
            break
        gc.allocate(64, obj=obj)
    assert gc._survival_rate() > 0.8


def test_live_allocations_cost_more(setup):
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096

    def run(keep_alive):
        machine = Machine(cfg)
        gc = SimGC(machine, cfg.gc)
        keep = []
        for _ in range(2000):
            obj = Dummy()
            if keep_alive:
                keep.append(obj)
            gc.allocate(64, obj=obj)
        return machine.cycles

    assert run(keep_alive=True) > run(keep_alive=False)


def test_major_collection_triggers(setup):
    cfg = SystemConfig()
    cfg.gc.nursery_bytes = 4096
    cfg.gc.min_major_threshold = 8192
    machine = Machine(cfg)
    gc = SimGC(machine, cfg.gc)
    keep = []
    seen = []
    machine.add_annot_listener(lambda t, p: seen.append(t))
    for _ in range(4000):
        obj = Dummy()
        keep.append(obj)
        gc.allocate(64, obj=obj)
    assert gc.major_collections >= 1
    assert tags.GC_MAJOR_START in seen
    assert gc.major_threshold >= cfg.gc.min_major_threshold


def test_major_threshold_grows():
    cfg = SystemConfig()
    cfg.gc.min_major_threshold = 1024
    machine = Machine(cfg)
    gc = SimGC(machine, cfg.gc)
    gc.old_bytes = 10_000
    gc.major_collect()
    assert gc.major_threshold == int(10_000 * 0.6 * cfg.gc.major_growth_factor)


def test_stats_keys(setup):
    _machine, gc = setup
    gc.allocate(10)
    stats = gc.stats()
    assert stats["total_allocations"] == 1
    assert stats["total_allocated_bytes"] == 10
    assert set(stats) == {
        "minor_collections", "major_collections", "total_allocated_bytes",
        "total_allocations", "bytes_surviving_minor", "old_bytes",
    }


def test_non_weakrefable_objects_tolerated(setup):
    _machine, gc = setup
    for _ in range(100):
        gc.allocate(16, obj=42)  # ints are not weak-referenceable
    assert gc.total_allocations == 100


def test_bulk_branches_miss_carry():
    machine = Machine(SystemConfig())
    machine.exec_bulk_branches(10, 0.05)
    machine.exec_bulk_branches(10, 0.05)
    # 20 branches * 0.05 = 1 miss accumulated via the carry.
    assert machine.branch_misses == 1
    assert machine.branches == 20


def test_allocate_static_lives_in_old_generation(setup):
    from repro.gc.heap import OLD_BASE

    machine, gc = setup
    a = gc.allocate_static(64)
    b = gc.allocate_static(8)
    assert a == OLD_BASE
    assert b == a + 64
    # Static (prebuilt) data is translation-time: never charged, never
    # counted as a guest allocation.
    assert machine.instructions == 0
    assert gc.total_allocations == 0
    assert gc.total_allocated_bytes == 0


def test_static_and_nursery_address_spaces_disjoint(setup):
    from repro.gc.heap import OLD_BASE

    _machine, gc = setup
    static = gc.allocate_static(32)
    dynamic = gc.allocate(32)
    assert static >= OLD_BASE
    assert dynamic < OLD_BASE


def test_minor_collect_moves_old_top_past_survivors(setup):
    _machine, gc = setup
    keep = [Dummy() for _ in range(64)]
    for obj in keep:
        gc.allocate(64, obj=obj)
    top_before = gc._old_top
    gc.minor_collect()
    # Survivors were copied: the old-space bump pointer advanced, so
    # later static/old allocations cannot alias them.
    assert gc._old_top == top_before + gc.old_bytes


def test_charge_remainder_path(setup):
    from repro.gc.heap import _GC_BRANCH_RATE, _GC_WORK_SIZE

    machine, gc = setup
    # A cost that is NOT a multiple of the work-mix size exercises the
    # remainder top-up; every instruction must still be accounted for.
    cost = _GC_WORK_SIZE * 3 + 5
    gc._charge(cost)
    assert machine.instructions == cost


def test_charge_smaller_than_one_chunk(setup):
    machine, gc = setup
    gc._charge(3)
    assert machine.instructions == 3


def test_oversized_allocation_exceeding_nursery(setup):
    _machine, gc = setup
    # An allocation larger than the whole nursery still succeeds: the
    # collector runs first, then the bump pointer simply moves past the
    # nursery limit (the model has no separate large-object space).
    huge = gc.nursery_size * 2
    addr = gc.allocate(huge)
    assert addr == NURSERY_BASE
    assert gc.nursery_used == huge
    assert gc.total_allocated_bytes == huge
    # The next allocation triggers a minor collection immediately.
    before = gc.minor_collections
    gc.allocate(16)
    assert gc.minor_collections == before + 1


def test_sample_countdown_resets(setup):
    _machine, gc = setup
    keep = []
    for _ in range(33):
        obj = Dummy()
        keep.append(obj)
        gc.allocate(16, obj=obj)
    # One sample per _SAMPLE_EVERY=16 allocations: exactly 2 after 33.
    assert len(gc._samples) == 2


def test_survival_rate_default_when_unsampled(setup):
    _machine, gc = setup
    assert gc._survival_rate() == gc._cfg.default_survival_rate
