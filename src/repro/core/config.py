"""Configuration objects for the simulated VMs and the machine model.

All tunables live here so experiments can sweep them.  Defaults are the
paper's PyPy settings scaled down: the paper runs benchmarks for 10 billion
instructions with a hot-loop threshold of 1039; we run benchmarks in the
1-40M instruction range, so thresholds scale by roughly the same factor to
keep warmup a comparable *fraction* of execution.
"""

import os

from dataclasses import dataclass, field

from repro.core.errors import ConfigError

# Simulated clock frequency used to report "seconds" (a 3.2 GHz part).
# Shared by the harness (RunResult.seconds) and the telemetry layer
# (cycle-domain timestamps scaled to trace microseconds).
CLOCK_HZ = 3.2e9


def _default_quicken():
    """Default for :attr:`SystemConfig.quicken` (``REPRO_QUICKEN`` override).

    Quickening is a host-side fast path that is proven bit-identical by
    tests/interp/test_quicken_equivalence.py, so it defaults to on; set
    ``REPRO_QUICKEN=0`` to force the unquickened reference paths (the
    difftest oracle also cross-checks both continuously).
    """
    value = os.environ.get("REPRO_QUICKEN", "").strip().lower()
    if value in ("0", "off", "false", "no"):
        return False
    if value in ("1", "on", "true", "yes"):
        return True
    return True


def _default_backend():
    """Default for :attr:`SystemConfig.sim_backend` (``REPRO_BACKEND``).

    Selects the host implementation of the machine hot loop (see
    :mod:`repro.backend`): ``python`` is the reference, ``fast`` the
    exec-specialized kernels, ``native`` the cffi-compiled C runtime
    (degrading to ``fast`` without a toolchain).  All three are proven
    bit-identical by tests/backend/; the default stays the reference
    until the equivalence gate runs in CI.
    """
    value = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if value in ("python", "fast", "native"):
        return value
    return "python"


def _default_tier1():
    """Default for :attr:`SystemConfig.tier1` (``REPRO_TIER1`` override).

    The baseline threaded-code tier (see :mod:`repro.interp.tier1`)
    changes *simulated* results when on — cheaper dispatch blocks and
    site-keyed indirect-branch hashes are exactly the effect being
    characterized — so unlike quickening it defaults to off: the
    default simulation stays bit-identical to the two-mode system the
    paper measures.  Set ``REPRO_TIER1=1`` to enable the tier.
    """
    value = os.environ.get("REPRO_TIER1", "").strip().lower()
    if value in ("1", "on", "true", "yes"):
        return True
    return False


def _default_eventprog():
    """Default for :attr:`SystemConfig.eventprog` (``REPRO_EVENTPROG``).

    Event programs (see :mod:`repro.backend.eventprog`) batch the hot
    drivers' machine-event sequences into single ``exec_program`` calls
    — one FFI crossing per trace segment on the native backend.  Like
    ``quicken``/``sim_backend`` this changes only host wall-clock, never
    simulated results (tests/backend/ pins eventprog on == off bit for
    bit), but it defaults to off until the equivalence gate runs in CI.
    Set ``REPRO_EVENTPROG=1`` to enable.
    """
    value = os.environ.get("REPRO_EVENTPROG", "").strip().lower()
    if value in ("1", "on", "true", "yes"):
        return True
    return False


def _default_verify():
    """Default for :attr:`SystemConfig.verify` (``REPRO_VERIFY`` override).

    Static verification (see :mod:`repro.analysis`) re-checks every
    compiled trace and executed code object, so it defaults to off; set
    ``REPRO_VERIFY=1`` to turn the debug gates into hard failures (CI
    runs the tier-1 suite this way).
    """
    value = os.environ.get("REPRO_VERIFY", "").strip().lower()
    if value in ("1", "on", "true", "yes"):
        return True
    return False


@dataclass
class JitConfig:
    """Parameters of the meta-tracing JIT (mirrors RPython's jitparams)."""

    enabled: bool = True
    # A loop header must be seen this many times before tracing starts
    # (PyPy default: 1039; scaled down with our workloads).
    hot_loop_threshold: int = 39
    # A guard must fail this many times before a bridge is traced
    # (PyPy default: function_threshold-ish / trace_eagerness 200).
    bridge_threshold: int = 11
    # Maximum number of recorded IR operations before a trace is aborted
    # (PyPy default: 6000).
    trace_limit: int = 6000
    # After this many aborted attempts a loop header is blacklisted.
    max_aborts: int = 4
    # Tier-1 promotion: a code object whose loop headers (or, for
    # entry-profiled guests, frame entries) have been seen this many
    # times is compiled to threaded code — strictly between 1 and the
    # hot-loop threshold, so the baseline tier engages well before
    # tracing does (only acted on when ``SystemConfig.tier1`` is set).
    tier1_threshold: int = 13
    # Maximum virtual-frame depth the tracer will inline through.
    max_inline_depth: int = 12
    # Optimizer passes (ablations flip these).
    opt_constfold: bool = True
    opt_guard_dedup: bool = True
    opt_heap_cache: bool = True
    opt_cse: bool = True
    opt_virtuals: bool = True
    opt_loop_peeling: bool = True
    # Emit the jitlog (the PyPy Log facility; <10% overhead in the paper,
    # zero overhead here because time is simulated).
    jitlog: bool = True

    def validate(self):
        if self.hot_loop_threshold < 1:
            raise ConfigError("hot_loop_threshold must be >= 1")
        if self.bridge_threshold < 1:
            raise ConfigError("bridge_threshold must be >= 1")
        if self.trace_limit < 10:
            raise ConfigError("trace_limit must be >= 10")
        if self.tier1_threshold < 1:
            raise ConfigError("tier1_threshold must be >= 1")


@dataclass
class GcConfig:
    """Parameters of the generational GC model (incminimark-like)."""

    nursery_bytes: int = 1 << 18          # 256 KiB nursery (scaled down)
    major_growth_factor: float = 1.82     # incminimark default
    min_major_threshold: int = 1 << 21    # first major collection trigger
    # Fraction of nursery bytes assumed to survive a minor collection when
    # no liveness sample is available.
    default_survival_rate: float = 0.08
    # Instruction costs of the collector (per byte scanned / copied).
    minor_fixed_cost: int = 420
    minor_cost_per_surviving_byte: float = 0.9
    major_fixed_cost: int = 9000
    major_cost_per_live_byte: float = 0.35

    def validate(self):
        if self.nursery_bytes < 1024:
            raise ConfigError("nursery_bytes must be >= 1024")
        if not 0.0 <= self.default_survival_rate <= 1.0:
            raise ConfigError("default_survival_rate must be in [0, 1]")


@dataclass
class UarchConfig:
    """Parameters of the superscalar timing model and predictors."""

    issue_width: int = 4
    mispredict_penalty: int = 14
    gshare_bits: int = 12            # 4K-entry gshare PHT
    btb_entries: int = 512
    ras_entries: int = 16
    l1d_kib: int = 32
    l1d_assoc: int = 8
    l1d_line: int = 64
    l1d_miss_penalty: int = 12       # L2 hit latency
    l2_kib: int = 512
    l2_assoc: int = 8
    l2_miss_penalty: int = 90        # memory latency
    # Average extra stall cycles charged per instruction class (models
    # dependency chains; the mix differences across phases produce the
    # paper's per-phase IPC differences).
    stall_load: float = 1.0
    stall_store: float = 0.12
    stall_mul: float = 1.6
    stall_div: float = 11.0
    stall_fpu: float = 1.9

    def validate(self):
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if self.gshare_bits < 4 or self.gshare_bits > 24:
            raise ConfigError("gshare_bits out of range")


@dataclass
class SystemConfig:
    """Top-level configuration bundle for one simulated VM run."""

    jit: JitConfig = field(default_factory=JitConfig)
    gc: GcConfig = field(default_factory=GcConfig)
    uarch: UarchConfig = field(default_factory=UarchConfig)
    # Collect annotations with the PinTool (per-phase stats etc.).
    pintool: bool = True
    # Lower every JIT IR node with a tagged IR_NODE annotation (heavy;
    # used to cross-validate the jitlog's aggregated execution counts
    # against Pin-style per-node interception).
    annotate_ir_nodes: bool = False
    # Record a bytecode-rate timeline (needed for the warmup figure).
    record_timeline: bool = False
    timeline_bucket_insns: int = 50_000
    # Stop the simulation after this many retired instructions (0 = off);
    # mirrors the paper's "first 10B instructions" methodology.
    max_instructions: int = 0
    # Host-side interpreter quickening (superinstruction runs + inline
    # caches).  Changes only host wall-clock, never simulated results:
    # the equivalence suite pins quickened-on == quickened-off counters
    # bit for bit.  Env override: REPRO_QUICKEN=0/1.
    quicken: bool = field(default_factory=_default_quicken)
    # Baseline threaded-code tier (tier-1 JIT, repro.interp.tier1): hot
    # code objects are compiled to subroutine-threaded handler sequences
    # with a cheaper dispatch block and site-keyed indirect-branch
    # hashes.  Unlike ``quicken`` this is a *simulated* optimization —
    # cycles/IPC/MPKI change when it is on — so it defaults to off and
    # the default results stay bit-identical to the paper's two-mode
    # system.  Env override: REPRO_TIER1=1.
    tier1: bool = field(default_factory=_default_tier1)
    # Static verification debug gates (repro.analysis): verify guest
    # bytecode at program entry, every compiled trace after each
    # pipeline stage, and every quickening run table.  Off by default —
    # the off path is one attribute check, like the telemetry bus.
    # Env override: REPRO_VERIFY=1.
    verify: bool = field(default_factory=_default_verify)
    # Host backend for the machine hot loop: "python" (reference),
    # "fast" (exec-specialized kernels) or "native" (cffi-compiled C;
    # degrades to fast without a toolchain).  Changes only host
    # wall-clock, never simulated results — tests/backend/ pins all
    # backends bit-identical.  Env override: REPRO_BACKEND=...
    sim_backend: str = field(default_factory=_default_backend)
    # Resident event programs (repro.backend.eventprog): trace segments,
    # tier-1 blocks and quickened runs charge the machine through one
    # pre-compiled event sequence per hot site instead of per-op calls.
    # Changes only host wall-clock, never simulated results — the
    # eventprog equivalence suite pins on == off bit for bit on every
    # backend.  Env override: REPRO_EVENTPROG=1.
    eventprog: bool = field(default_factory=_default_eventprog)
    seed: int = 0xC0FFEE

    def validate(self):
        self.jit.validate()
        self.gc.validate()
        self.uarch.validate()
        if self.sim_backend not in ("python", "fast", "native"):
            raise ConfigError("sim_backend must be python, fast or native")

    @classmethod
    def interpreter_only(cls, **kwargs):
        """A config with the meta-tracing JIT disabled (PyPy-no-JIT mode)."""
        cfg = cls(**kwargs)
        cfg.jit.enabled = False
        return cfg
