import pytest

from repro.core.errors import ReproError
from repro.interp.aot import AotFunction, aot


def test_decorator_builds_function():
    @aot("lib.fn", "L", "pure")
    def fn(ctx, a, b):
        return a + b

    assert isinstance(fn, AotFunction)
    assert fn.name == "lib.fn"
    assert fn.src == "L"
    assert fn.call(None, (1, 2)) == 3


def test_effect_properties():
    pure = AotFunction("p", "R", "pure", lambda ctx: None)
    readonly = AotFunction("r", "R", "readonly", lambda ctx: None)
    idempotent = AotFunction("i", "R", "idempotent", lambda ctx: None)
    arbitrary = AotFunction("a", "R", "any", lambda ctx: None)
    assert pure.reexec_safe and not pure.invalidates_heap
    assert readonly.reexec_safe and not readonly.invalidates_heap
    assert idempotent.reexec_safe and idempotent.invalidates_heap
    assert not arbitrary.reexec_safe and arbitrary.invalidates_heap


def test_rejects_bad_src():
    with pytest.raises(ReproError):
        AotFunction("x", "Z", "pure", lambda ctx: None)


def test_rejects_bad_effects():
    with pytest.raises(ReproError):
        AotFunction("x", "R", "sometimes", lambda ctx: None)
