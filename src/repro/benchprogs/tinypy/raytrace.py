# raytrace-simple: a minimal sphere raytracer with vector objects —
# float math + heavy temporary-object allocation (escape analysis).
N = 28


class Vector:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z

    def add(self, other):
        return Vector(self.x + other.x, self.y + other.y, self.z + other.z)

    def sub(self, other):
        return Vector(self.x - other.x, self.y - other.y, self.z - other.z)

    def scale(self, factor):
        return Vector(self.x * factor, self.y * factor, self.z * factor)

    def dot(self, other):
        return self.x * other.x + self.y * other.y + self.z * other.z

    def magnitude(self):
        return self.dot(self) ** 0.5

    def normalize(self):
        return self.scale(1.0 / self.magnitude())


class Sphere:
    def __init__(self, center, radius, brightness):
        self.center = center
        self.radius = radius
        self.brightness = brightness

    def intersect(self, origin, direction):
        # Returns distance or -1.0.
        oc = origin.sub(self.center)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return -1.0
        sq = disc ** 0.5
        t = (0.0 - b - sq) / 2.0
        if t > 0.001:
            return t
        t = (0.0 - b + sq) / 2.0
        if t > 0.001:
            return t
        return -1.0


def trace(origin, direction, spheres, light):
    best_t = 1000000.0
    best = None
    for s in spheres:
        t = s.intersect(origin, direction)
        if t > 0.0 and t < best_t:
            best_t = t
            best = s
    if best is None:
        return 0.0
    hit = origin.add(direction.scale(best_t))
    normal = hit.sub(best.center).normalize()
    to_light = light.sub(hit).normalize()
    diffuse = normal.dot(to_light)
    if diffuse < 0.0:
        diffuse = 0.0
    return best.brightness * (0.1 + 0.9 * diffuse)


def run_raytrace(size):
    spheres = [
        Sphere(Vector(0.0, 0.0, 5.0), 1.0, 1.0),
        Sphere(Vector(1.5, 0.5, 4.0), 0.5, 0.8),
        Sphere(Vector(-1.5, -0.5, 6.0), 1.2, 0.6),
        Sphere(Vector(0.5, -1.2, 3.5), 0.4, 0.9),
    ]
    light = Vector(5.0, 5.0, 0.0)
    origin = Vector(0.0, 0.0, 0.0)
    checksum = 0
    for py in range(size):
        for px in range(size):
            x = (px * 2.0 / size) - 1.0
            y = (py * 2.0 / size) - 1.0
            direction = Vector(x, y, 1.0).normalize()
            value = trace(origin, direction, spheres, light)
            checksum = (checksum + int(value * 255.0)) % 1000000007
    print("raytrace", checksum)


run_raytrace(N)
