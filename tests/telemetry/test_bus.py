"""TelemetryBus unit tests (deterministic fake clock)."""

from repro.telemetry.bus import TelemetryBus


class FakeClock(object):
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt=1.0):
        self.now += dt


def make_bus():
    clock = FakeClock()
    return TelemetryBus(clock=clock, pid=3, tid=1,
                        process_name="test"), clock


def test_simple_span_duration_and_self():
    bus, clock = make_bus()
    bus.begin("a", "cat")
    clock.tick(10)
    record = bus.end("a")
    assert record["dur"] == 10
    assert record["self"] == 10
    assert record["depth"] == 0
    assert record["pid"] == 3 and record["tid"] == 1


def test_nested_spans_accumulate_child_ticks():
    bus, clock = make_bus()
    bus.begin("parent")
    clock.tick(2)
    bus.begin("child")
    clock.tick(5)
    bus.end("child")
    clock.tick(3)
    parent = bus.end("parent")
    assert parent["dur"] == 10
    assert parent["self"] == 5  # 10 - 5 child ticks
    child = [e for e in bus.events() if e.get("name") == "child"][0]
    assert child["depth"] == 1
    assert child["self"] == 5


def test_end_with_mismatched_name_is_noop():
    bus, clock = make_bus()
    bus.begin("a")
    assert bus.end("other") is None
    assert bus.depth == 1
    clock.tick(1)
    assert bus.end("a")["name"] == "a"


def test_end_on_empty_stack_is_noop():
    bus, _ = make_bus()
    assert bus.end() is None


def test_span_context_manager():
    bus, clock = make_bus()
    with bus.span("s", "cat", key=7):
        clock.tick(4)
    (span,) = [e for e in bus.events() if e["type"] == "span"]
    assert span["dur"] == 4
    assert span["args"] == {"key": 7}


def test_annotate_merges_into_open_span():
    bus, clock = make_bus()
    bus.begin("s", args={"a": 1})
    bus.annotate(b=2)
    clock.tick(1)
    record = bus.end("s", args={"c": 3})
    assert record["args"] == {"a": 1, "b": 2, "c": 3}


def test_annotate_without_open_span_is_noop():
    bus, _ = make_bus()
    bus.annotate(x=1)  # must not raise
    assert bus.events()[1:] == []


def test_instant_record():
    bus, clock = make_bus()
    clock.tick(7)
    bus.instant("marker", "cat", {"k": "v"})
    (instant,) = [e for e in bus.events() if e["type"] == "instant"]
    assert instant["ts"] == 7
    assert instant["args"] == {"k": "v"}


def test_finish_closes_open_spans_and_flushes_metrics():
    bus, clock = make_bus()
    bus.begin("outer")
    bus.begin("inner")
    bus.count("n", 2)
    bus.gauge("g", 1.5)
    bus.histogram("h", 8)
    clock.tick(1)
    bus.finish()
    bus.finish()  # idempotent
    events = bus.events()
    spans = [e for e in events if e["type"] == "span"]
    assert {s["name"] for s in spans} == {"outer", "inner"}
    (metrics,) = [e for e in events if e["type"] == "metrics"]
    assert metrics["metrics"]["counters"] == {"n": 2}
    assert metrics["metrics"]["gauges"] == {"g": 1.5}
    assert metrics["metrics"]["histograms"]["h"]["count"] == 1
    assert events.count({e["type"]: 1 for e in events}.get("metrics")) <= 1


def test_events_lead_with_meta():
    bus, _ = make_bus()
    meta = bus.events()[0]
    assert meta["type"] == "meta"
    assert meta["process_name"] == "test"
    assert meta["ticks_per_us"] == 1.0
