"""Pre-lowered block descriptors: the fused fast path of the machine.

The seed retires every instruction mix by looping over its ``(klass,
count)`` pairs inside :meth:`Machine.exec_mix` — O(classes) arithmetic on
every single call, millions of times per run.  A :class:`BlockDescr`
does that lowering exactly once: the total instruction count, the
stall-cycle sum and the bulk-branch count are all precomputed, so
:meth:`Machine.exec_block` retires the whole block with a handful of
scalar updates and defers the per-class histogram to read time
(per-descriptor execution counters are folded into ``class_counts``
lazily).

Bit-identity with the unbatched path is a hard requirement (the
equivalence tests compare :class:`CounterSnapshot` fields field-for-field
against ``exec_mix`` on full benchmark runs), which constrains the float
arithmetic: ``exec_mix`` accumulates stall cycles left-to-right in mix
order and adds the bulk mispredict penalty where the ``br_bulk`` entry
sits.  The descriptor therefore precomputes ``stall_cycles`` with the
same left-to-right accumulation and refuses mixes where a stalling class
follows a ``br_bulk`` entry (none exist; :func:`repro.isa.insns.mix`
callers list ``br_bulk`` last and sorted mixes end with it because
``BR_BULK`` is the highest class id).

Events that feed real predictor or cache state (``branch``/``indirect``/
``call``/``ret``, addressed ``load``/``store``) are NEVER represented in
a descriptor — they stay exact sequential calls; batching covers only
stall/width accounting and calibrated bulk-miss-rate branches.
"""

from repro.core.errors import IsaError
from repro.isa import insns


class BlockDescr(object):
    """Immutable pre-aggregated lowering of one instruction mix.

    ``count`` is the only mutable field: the number of times the owning
    machine retired this block (folded into ``class_counts`` on read).
    Descriptors are per-machine because the stall weights and issue
    width come from the machine's config.
    """

    __slots__ = ("mix", "pairs", "n_insns", "insn_cycles", "stall_cycles",
                 "flat_cycles", "bulk_count", "count", "bid")

    def __init__(self, mix, stalls, inv_width):
        total = 0
        extra = 0.0
        bulk = 0
        for klass, n in mix:
            total += n
            if klass == insns.BR_BULK:
                bulk += n
                continue
            if bulk:
                # A stalling class after br_bulk would change the float
                # accumulation order vs. exec_mix; no real mix does this.
                if stalls[klass]:
                    raise IsaError(
                        "mix not batchable: stall class after br_bulk")
                continue
            stall = stalls[klass]
            if stall:
                extra += stall * n
        self.mix = mix
        self.pairs = tuple(mix)
        self.n_insns = total
        self.insn_cycles = total * inv_width
        self.stall_cycles = extra
        self.flat_cycles = self.insn_cycles + extra
        self.bulk_count = bulk
        self.count = 0
        # Backend block id: index of this descriptor in the native
        # backend's C cost arrays (assigned at registration time).
        self.bid = None

    def __repr__(self):
        return "<BlockDescr %d insns %r>" % (self.n_insns, self.mix)


class FusedDescr(object):
    """A block plus a calibrated bulk-branch charge, retired as one call.

    Models the seed's back-to-back ``exec_mix(mix)`` +
    ``exec_bulk_branches(branches, miss_rate)`` pattern (meta-tracing
    record costs, optimizer/backend costs) with the identical sequence
    of float operations, so counters stay bit-identical.
    """

    __slots__ = ("block", "branches", "miss_rate", "branch_cycles", "count",
                 "fid")

    def __init__(self, block, branches, miss_rate, inv_width):
        self.block = block
        self.branches = branches
        self.miss_rate = miss_rate
        self.branch_cycles = branches * inv_width
        self.count = 0
        # Backend fused id (see BlockDescr.bid).
        self.fid = None

    def __repr__(self):
        return "<FusedDescr %r +%d br @%.3f>" % (
            self.block.mix, self.branches, self.miss_rate)


def fold_class_counts(counts, blocks, fused):
    """Fold descriptor execution counters into a class-count list.

    ``counts`` is the eager per-event histogram; descriptor executions
    multiply out exactly (integer arithmetic), so lazy folding is
    indistinguishable from the seed's per-call updates.  Fused
    descriptors fold only their bulk branches (as ``BR_COND``, matching
    ``exec_bulk_branches``); their inner block is folded via ``blocks``.
    """
    folded = list(counts)
    for descr in blocks:
        executions = descr.count
        if not executions:
            continue
        for klass, n in descr.pairs:
            folded[klass] += n * executions
    for descr in fused:
        if descr.count:
            folded[insns.BR_COND] += descr.branches * descr.count
    return folded
