import pytest

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.rktlang.vm import RacketRef, RktVM


def run_racket_ref(source):
    vm = RacketRef(SystemConfig())
    vm.run_source(source)
    return vm


def run_rktvm(source, jit=True, threshold=5):
    cfg = SystemConfig() if jit else SystemConfig.interpreter_only()
    if jit:
        cfg.jit.hot_loop_threshold = threshold
        cfg.jit.bridge_threshold = 3
    ctx = VMContext(cfg)
    vm = RktVM(ctx)
    vm.run_source(source)
    return vm, ctx


def check_all_vms(source):
    """Run on RacketRef, RktVM-nojit and RktVM-jit; outputs must agree.

    Returns (stdout, jit_ctx) for further assertions — the TinyRkt
    mirror of tests/pylang/conftest.check_all_vms.
    """
    reference = run_racket_ref(source)
    nojit, _ = run_rktvm(source, jit=False)
    jit, ctx = run_rktvm(source, jit=True)
    assert reference.stdout() == nojit.stdout(), (
        "racket-ref vs pycket-nojit mismatch:\n%s\n-----\n%s"
        % (reference.stdout(), nojit.stdout()))
    assert nojit.stdout() == jit.stdout(), (
        "pycket nojit vs jit mismatch:\n%s\n-----\n%s"
        % (nojit.stdout(), jit.stdout()))
    return jit.stdout(), ctx


@pytest.fixture
def vms():
    return check_all_vms
