"""Delta-debugging shrinker for failing TinyPy programs.

Given a program and an ``interesting(source) -> bool`` predicate (for
the fuzzer: "the oracle still reports this exact divergence"), the
shrinker greedily applies AST-level reductions until no smaller variant
stays interesting:

* **Statement removal** — ddmin-style chunked deletion from every
  statement body (module, function/method, loop, branch arms).  Bodies
  that would become empty get a ``pass`` so the candidate still parses.
* **Compound hoisting** — replace a ``for``/``while``/``if``/``with``-
  style compound by its own body, or a class/function definition by
  nothing (removal covers the latter).
* **Constant reduction** — shrink integer literals toward 0/1, strings
  toward ``""``/single chars, and drop list/dict literal elements.
* **Name inlining is deliberately absent** — divergences in this code
  base live in operator/JIT behavior, not in binding structure, and
  keeping the pass list short keeps shrink times bounded.

The predicate is treated as a black box; any exception it raises marks
the candidate uninteresting (e.g. a variant that no longer compiles).

Everything is deterministic: candidates are enumerated in a fixed
order, the first accepted improvement restarts the scan, and the result
is normalized through ``ast.unparse``.
"""

import ast
import copy

#: AST statement types whose ``body`` (and ``orelse``) can be shrunk.
_BODY_FIELDS = ("body", "orelse")

#: Compounds that may be replaced by their own body.
_HOISTABLE = (ast.For, ast.While, ast.If)


def _unparse(tree):
    return ast.unparse(tree) + "\n"


def _safe_interesting(interesting, source):
    try:
        return bool(interesting(source))
    except Exception:
        return False


def _iter_bodies(tree):
    """Yield every (holder, field, body_list) in the tree, outermost
    first — shrinking outer bodies first removes the most per test."""
    stack = [tree]
    while stack:
        node = stack.pop(0)
        for field in _BODY_FIELDS:
            body = getattr(node, field, None)
            if isinstance(body, list) and body:
                yield node, field, body
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _with_body(tree, path, replacement):
    """Copy ``tree`` and replace the body addressed by ``path``."""
    new_tree = copy.deepcopy(tree)
    holder = new_tree
    for field, index in path[:-1]:
        holder = getattr(holder, field)[index]
    field = path[-1]
    body = replacement if replacement else [ast.Pass()]
    setattr(holder, field, body)
    return ast.fix_missing_locations(new_tree)


def _body_paths(tree):
    """Enumerate (path, body) pairs; a path is [(field, idx)..., field]."""
    results = []

    def walk(node, prefix):
        for field in _BODY_FIELDS:
            body = getattr(node, field, None)
            if isinstance(body, list) and body:
                results.append((prefix + [field], body))
                for i, child in enumerate(body):
                    walk(child, prefix + [(field, i)])

    walk(tree, [])
    return results


def _removal_candidates(tree):
    """Chunked-deletion candidates, largest chunks first."""
    for path, body in _body_paths(tree):
        n = len(body)
        chunk = n
        while chunk >= 1:
            for start in range(0, n, chunk):
                kept = body[:start] + body[start + chunk:]
                if len(kept) == n:
                    continue
                yield _with_body(tree, path, copy.deepcopy(kept))
            chunk //= 2


def _hoist_candidates(tree):
    """Replace each hoistable compound statement by its own body."""
    for path, body in _body_paths(tree):
        for i, stmt in enumerate(body):
            if isinstance(stmt, _HOISTABLE):
                hoisted = body[:i] + stmt.body + body[i + 1:]
                yield _with_body(tree, path, copy.deepcopy(hoisted))


class _ConstShrinker(ast.NodeTransformer):
    """Rewrites exactly one constant (the ``target``-th one visited)."""

    def __init__(self, target, value):
        self.target = target
        self.value = value
        self.seen = -1

    def visit_Constant(self, node):
        self.seen += 1
        if self.seen == self.target:
            return ast.copy_location(ast.Constant(self.value), node)
        return node


def _const_values(value):
    if isinstance(value, bool):
        return []
    if isinstance(value, int) and value not in (0, 1):
        out = [0, 1]
        if abs(value) > 256:
            out.append(value // 2)
        return out
    if isinstance(value, float) and value not in (0.0, 1.0):
        return [0.0, 1.0]
    if isinstance(value, str) and len(value) > 1:
        return ["", value[0]]
    return []


class _ConstCollector(ast.NodeVisitor):
    """Collects constants in the same DFS order _ConstShrinker visits."""

    def __init__(self):
        self.values = []

    def visit_Constant(self, node):
        self.values.append(node.value)


def _constant_candidates(tree):
    collector = _ConstCollector()
    collector.visit(tree)
    constants = collector.values
    for index, value in enumerate(constants):
        for smaller in _const_values(value):
            new_tree = _ConstShrinker(index, smaller).visit(
                copy.deepcopy(tree))
            yield ast.fix_missing_locations(new_tree)


_PASSES = (_removal_candidates, _hoist_candidates, _constant_candidates)


def shrink(source, interesting, max_tests=2000):
    """Reduce ``source`` to a smaller program that stays interesting.

    ``interesting`` must hold for ``source`` itself (ValueError
    otherwise — a shrink request for a non-failure is a harness bug).
    ``max_tests`` bounds the number of predicate evaluations; the best
    reduction found so far is returned when the budget runs out.
    """
    tree = ast.parse(source)
    current = _unparse(tree)
    if not _safe_interesting(interesting, current):
        raise ValueError("initial program is not interesting")
    tests = 0
    improved = True
    while improved and tests < max_tests:
        improved = False
        tree = ast.parse(current)
        for candidates in _PASSES:
            for candidate_tree in candidates(tree):
                candidate = _unparse(candidate_tree)
                if len(candidate) >= len(current):
                    continue
                tests += 1
                if _safe_interesting(interesting, candidate):
                    current = candidate
                    improved = True
                    break
                if tests >= max_tests:
                    break
            if improved or tests >= max_tests:
                break
    return current
