"""Shared primitives: errors, annotation tags, configuration."""
