"""The config.verify / REPRO_VERIFY debug gates and the difftest
oracle's "verify" invariant family."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import VerificationError
from repro.difftest.oracle import (
    OracleReport,
    check_static_bytecode,
    check_static_invariants,
    run_interp,
)
from repro.interp.context import VMContext
from repro.interp.minilang import Code as MiniCode
from repro.interp.minilang import MiniInterp
from repro.jit import ir
from repro.pylang import bytecode as bc
from repro.pylang.interp import PyVM

LOOP_SRC = """
i = 0
while i < 40:
    i = i + 1
print(i)
"""


def bad_pycode():
    # Immediate operand-stack underflow (BC202).
    return bc.PyCode("bad", [bc.POP_TOP, bc.LOAD_CONST,
                             bc.RETURN_VALUE], [0, 0, 0], [None], [],
                     [], 0)


def test_repro_verify_env_controls_default(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert SystemConfig().verify is False
    monkeypatch.setenv("REPRO_VERIFY", "1")
    assert SystemConfig().verify is True
    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert SystemConfig().verify is False


def test_pyvm_gate_rejects_corrupt_bytecode():
    config = SystemConfig()
    config.verify = True
    vm = PyVM(VMContext(config))
    with pytest.raises(VerificationError) as excinfo:
        vm.run_module_code(bad_pycode())
    assert excinfo.value.report.has("BC202")


def test_pyvm_gate_off_by_default(monkeypatch):
    # Without the gate the same code object reaches the dispatch loop
    # (and fails there at runtime instead) — the gate is opt-in.
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    vm = PyVM(VMContext(SystemConfig()))
    assert vm._verify is False


def test_minilang_gate_rejects_corrupt_code():
    config = SystemConfig()
    config.verify = True
    interp = MiniInterp(VMContext(config))
    bad = MiniCode("bad", [("pop", 0), ("return", 0)], 0)
    with pytest.raises(VerificationError):
        interp.run(bad)


def test_jit_pipeline_runs_clean_with_gates_on(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")
    run = run_interp(LOOP_SRC, jit=True, threshold=7)
    assert run.error is None
    assert run.ctx.config.verify is True
    assert run.ctx.registry.traces  # the gate saw real compilations


def test_oracle_verify_family_flags_corrupt_trace():
    run = run_interp(LOOP_SRC, jit=True, threshold=7)
    trace = run.ctx.registry.traces[0]
    trace.ops.append(ir.IROp(ir.SAME_AS, [ir.Const(0)]))
    report = OracleReport(LOOP_SRC)
    check_static_invariants(run, report)
    assert any(d.kind == "verify" for d in report.divergences)


def test_oracle_verify_family_clean_on_healthy_run():
    run = run_interp(LOOP_SRC, jit=True, threshold=7)
    report = OracleReport(LOOP_SRC)
    check_static_invariants(run, report)
    check_static_bytecode(LOOP_SRC, report)
    assert not report.divergences
