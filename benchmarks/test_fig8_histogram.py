"""Figure 8: dynamic frequency histogram of IR node types."""

from conftest import save

from repro.harness import experiments


def test_fig8(benchmark, quick):
    histogram, text = benchmark.pedantic(
        lambda: experiments.fig8(quick=quick), rounds=1, iterations=1)
    save("fig8_histogram.txt", text)

    ranked = sorted(histogram.items(), key=lambda kv: -kv[1])
    top_names = [name for name, _ in ranked[:6]]
    # Paper shape: getfield_gc and setfield_gc are among the most
    # frequent node types.
    assert any("getfield" in name for name in top_names)
    # Paper shape: the histogram has a long tail — most node types are
    # individually rare (<1% each).
    rare = [name for name, value in histogram.items() if value < 0.01]
    assert len(rare) >= len(histogram) * 0.5
    # Marker pseudo-ops are excluded, as in the paper's histogram.
    assert "debug_merge_point" not in histogram
    assert "label" not in histogram
