"""Native-reference kernels: correct outputs, plausible costs."""

import pytest

from repro.benchprogs import registry
from repro.core.config import SystemConfig
from repro.nativeref.kernels import KERNELS, run_native
from repro.pylang.cpref import CpRef


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_native_output_matches_guest(name):
    """Kernels that mirror a TinyPy port must print identical output."""
    program = registry.py_program(name)
    n = program.small_n
    native = run_native(name, n, SystemConfig())
    reference = CpRef(SystemConfig())
    reference.run_source(program.source(n=n))
    assert native.stdout() == reference.stdout()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_native_is_much_faster_than_cpython(name):
    program = registry.py_program(name)
    n = program.small_n
    native = run_native(name, n, SystemConfig())
    reference = CpRef(SystemConfig())
    reference.run_source(program.source(n=n))
    # Statically compiled code is at least ~5x faster than the
    # interpreter on every kernel (usually far more).
    assert native.machine.cycles * 5 < reference.machine.cycles


def test_native_costs_scale_with_n():
    small = run_native("nbody", 50, SystemConfig())
    large = run_native("nbody", 500, SystemConfig())
    assert large.machine.cycles > small.machine.cycles * 5
