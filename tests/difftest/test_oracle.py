"""The oracle's contract: engines agree, invariants hold, and injected
disagreements/inconsistencies are actually detected."""

import pytest

from repro.difftest.oracle import (OracleReport, check_counter_invariants,
                                   check_jitlog_invariants, check_program,
                                   check_store_roundtrip, run_cpref,
                                   run_interp)

AGREE_SRC = (
    "total = 0\n"
    "for i in range(100):\n"
    "    total = total + i * i\n"
    "print(total)\n"
)

ERROR_SRC = (
    "x = 5\n"
    "print(x)\n"
    "print(x // 0)\n"
)


def _natives():
    """1 when the native backend engine joins the oracle's lineup."""
    from repro.backend import native_unavailable_reason
    return 0 if native_unavailable_reason() else 1


class TestAgreement:
    def test_simple_program_all_engines_agree(self):
        report = check_program(AGREE_SRC, thresholds=(2, 39))
        assert report.ok, report.summary()
        # cpref, interp, quicken-off, backend-fast, tier1, eventprog,
        # jit@2, jit@39 — plus backend-native when a C toolchain built
        # the runtime.
        assert len(report.runs) == 8 + _natives()
        outputs = {run.output for run in report.runs}
        assert outputs == {"328350\n"}

    def test_engine_names(self):
        report = check_program(AGREE_SRC, thresholds=(2,))
        expected = ["cpref", "interp", "quicken-off", "backend-fast"]
        if _natives():
            expected.append("backend-native")
        expected += ["tier1", "eventprog", "jit@2"]
        assert [run.name for run in report.runs] == expected

    def test_guest_errors_compare_by_erroredness(self):
        # Both engines error at the same point; message wording differs
        # (that is fine), so the oracle must NOT flag output divergence.
        report = check_program(ERROR_SRC, thresholds=(2,))
        assert report.ok, report.summary()
        for run in report.runs:
            assert run.error is not None
            assert run.output == "5\n"  # output up to the error agrees

    def test_detects_real_divergence(self):
        # Simulate an engine bug by lying about one run's output.
        report = check_program(AGREE_SRC, thresholds=(2,))
        report.runs[2].output = "wrong\n"
        fresh = OracleReport(AGREE_SRC)
        fresh.runs = report.runs
        reference = fresh.runs[0]
        for run in fresh.runs[1:]:
            if run.outcome != reference.outcome:
                fresh.add("output", [reference.name, run.name], "differs")
        assert not fresh.ok
        assert fresh.divergences[0].kind == "output"

    def test_truncation_is_inconclusive_not_divergent(self):
        infinite = "x = 0\nwhile x < 1000000000:\n    x = x + 1\n"
        report = check_program(infinite, max_instructions=200_000)
        assert report.inconclusive
        assert report.ok  # no divergences claimed
        assert "inconclusive" in report.summary()

    def test_inconclusive_short_circuits_remaining_engines(self):
        infinite = "x = 0\nwhile x < 1000000000:\n    x = x + 1\n"
        report = check_program(infinite, max_instructions=200_000)
        assert len(report.runs) == 1  # cpref truncated; nothing else ran


class TestCounterInvariants:
    def test_phase_windows_sum_to_machine_totals(self):
        for run in (run_cpref(AGREE_SRC),
                    run_interp(AGREE_SRC),
                    run_interp(AGREE_SRC, jit=True, threshold=3)):
            report = OracleReport(AGREE_SRC)
            check_counter_invariants(run, report)
            assert report.ok, (run.name, report.summary())

    def test_detects_phase_undercount(self):
        run = run_interp(AGREE_SRC)
        run.tool.phases.windows[0].instructions -= 7
        report = OracleReport(AGREE_SRC)
        check_counter_invariants(run, report)
        assert not report.ok
        assert report.divergences[0].kind == "phase_insns"

    def test_detects_cycle_drift(self):
        run = run_interp(AGREE_SRC)
        run.tool.phases.windows[0].cycles += 1e6
        report = OracleReport(AGREE_SRC)
        check_counter_invariants(run, report)
        assert any(d.kind == "phase_cycles" for d in report.divergences)


class TestJitlogInvariants:
    def test_jitlog_matches_registry(self):
        run = run_interp(AGREE_SRC, jit=True, threshold=3)
        assert run.ctx.registry.traces  # the loop actually compiled
        report = OracleReport(AGREE_SRC)
        check_jitlog_invariants(run, report)
        assert report.ok, report.summary()

    def test_detects_missing_compile_event(self):
        run = run_interp(AGREE_SRC, jit=True, threshold=3)
        events = run.ctx.jitlog.events
        removed = [e for e in events if e[0] == "compile"][0]
        events.remove(removed)
        report = OracleReport(AGREE_SRC)
        check_jitlog_invariants(run, report)
        kinds = {d.kind for d in report.divergences}
        assert "jitlog_traces" in kinds
        assert "jitlog_ops" in kinds

    def test_detects_op_count_mismatch(self):
        run = run_interp(AGREE_SRC, jit=True, threshold=3)
        for kind, details in run.ctx.jitlog.events:
            if kind == "compile":
                details["n_ops_compiled"] += 1
                break
        report = OracleReport(AGREE_SRC)
        check_jitlog_invariants(run, report)
        assert any(d.kind == "jitlog_ops" for d in report.divergences)


class TestStoreRoundtrip:
    def test_roundtrip_bit_identical(self):
        run = run_interp(AGREE_SRC, jit=True, threshold=3)
        report = OracleReport(AGREE_SRC)
        check_store_roundtrip(run, report)
        assert report.ok, report.summary()

    def test_cpref_run_roundtrips_too(self):
        run = run_cpref(AGREE_SRC)
        report = OracleReport(AGREE_SRC)
        check_store_roundtrip(run, report)
        assert report.ok, report.summary()


@pytest.mark.slow
class TestHarnessAgreement:
    def test_run_many_workers_agree_with_in_process(self):
        from repro.difftest.oracle import check_run_many_agreement

        report = check_run_many_agreement(workers=2)
        assert report.ok, report.summary()

    def test_kernel_output_agrees_across_vms(self):
        from repro.difftest.oracle import check_kernel_output

        report = check_kernel_output("fannkuch")
        assert report.ok, report.summary()
