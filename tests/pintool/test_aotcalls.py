from repro.core import tags
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.pintool.aotcalls import AotCallProfiler
from repro.uarch.machine import Machine


def make():
    machine = Machine(SystemConfig())
    profiler = AotCallProfiler(machine)
    machine.add_annot_listener(profiler.on_annot)
    return machine, profiler


def simulate_call(machine, name, src, work):
    machine.annot(tags.JIT_CALL_START, (name, src))
    machine.exec_mix(insns.mix(alu=work))
    machine.annot(tags.JIT_CALL_STOP)


def test_attributes_time_to_function():
    machine, profiler = make()
    simulate_call(machine, "rbigint.add", "L", 500)
    simulate_call(machine, "rbigint.add", "L", 500)
    simulate_call(machine, "ll_join", "R", 100)
    calls, insns_count, cycles = profiler.by_function["rbigint.add"]
    assert calls == 2
    assert insns_count >= 1000
    assert cycles > 0
    assert profiler.sources["ll_join"] == "R"


def test_nested_calls_count_at_entry_point():
    machine, profiler = make()
    machine.annot(tags.JIT_CALL_START, ("outer", "I"))
    machine.exec_mix(insns.mix(alu=100))
    machine.annot(tags.JIT_CALL_START, ("inner", "R"))
    machine.exec_mix(insns.mix(alu=900))
    machine.annot(tags.JIT_CALL_STOP)
    machine.annot(tags.JIT_CALL_STOP)
    outer = profiler.by_function["outer"]
    assert outer[1] >= 1000  # inner time included in the entry point
    assert "inner" not in profiler.by_function


def test_significant_threshold():
    machine, profiler = make()
    simulate_call(machine, "big", "C", 9000)
    simulate_call(machine, "small", "C", 50)
    total = machine.cycles
    rows = profiler.significant(total, threshold=0.10)
    names = [row[2] for row in rows]
    assert names == ["big"]
    fraction, src, name, calls = rows[0]
    assert fraction > 0.9
    assert src == "C"
    assert calls == 1


def test_all_rows_sorted():
    machine, profiler = make()
    simulate_call(machine, "a", "R", 100)
    simulate_call(machine, "b", "R", 900)
    rows = profiler.all_rows(machine.cycles)
    assert [r[2] for r in rows] == ["b", "a"]


def test_unbalanced_stop_ignored():
    machine, profiler = make()
    machine.annot(tags.JIT_CALL_STOP)
    assert profiler.by_function == {}


def test_zero_total_cycles():
    _machine, profiler = make()
    assert profiler.significant(0) == []
    assert profiler.all_rows(0) == []
