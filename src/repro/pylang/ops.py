"""TinyPy operator semantics, written against LLOps.

Every function takes the VM (for llops access) and boxed operands, and
performs class dispatch through ``cls_of`` promotion guards — so in
traces these become guard_class + unboxed arithmetic, with residual
calls into rlib for bignum/string/list/dict heavy lifting, exactly
mirroring PyPy's object space.
"""

from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.isa import insns
from repro.jit.semantics import LLOverflow
from repro.pylang.objects import (
    W_BigInt,
    W_Bool,
    W_Dict,
    W_Float,
    W_Int,
    W_List,
    W_None,
    W_Set,
    W_Str,
    W_Tuple,
    wrap_bool,
)
from repro.rlib import cmath, rbigint, rstr
from repro.rlib.costutil import charge_loop
from repro.rlib.rbigint import BigInt

_INTISH = (W_Int, W_Bool)


def is_intish(cls):
    return cls is W_Int or cls is W_Bool


@aot("W_IntObject.pow", "I", "pure")
def int_pow(ctx, base, exponent):
    """Integer power; returns a machine int or a BigInt on overflow."""
    if exponent < 0:
        raise GuestError("negative int power unsupported")
    charge_loop(ctx, max(1, exponent.bit_length() * 2),
                insns.mix(mul=1, alu=3))
    result = BigInt.fromint(1)
    big_base = BigInt.fromint(base)
    e = exponent
    while e:
        if e & 1:
            result = rbigint._make(
                result.sign * big_base.sign,
                rbigint._mul_abs(result.digits, big_base.digits))
        e >>= 1
        if e:
            big_base = rbigint._make(
                1, rbigint._mul_abs(big_base.digits, big_base.digits))
    return result


@aot("format.mod", "M", "pure")
def str_format_mod(ctx, template, values):
    """A C-style %-formatting engine ('%d', '%s', '%f', '%x', '%%')."""
    charge_loop(ctx, max(1, len(template)), insns.mix(alu=3, load=2, store=1))
    out = []
    i = 0
    value_index = 0
    n = len(template)
    while i < n:
        char = template[i]
        if char != "%":
            out.append(char)
            i += 1
            continue
        i += 1
        if i >= n:
            raise GuestError("bad format string")
        spec = template[i]
        # Minimal width/precision support: %5d, %.2f etc.
        width = ""
        while spec in "0123456789.-":
            width += spec
            i += 1
            spec = template[i]
        i += 1
        if spec == "%":
            out.append("%")
            continue
        value = values[value_index]
        value_index += 1
        try:
            out.append(("%" + width + spec) % value)
        except ValueError:
            # Host int->str digit cap; the guest has no such limit.
            if spec not in ("d", "s") or not isinstance(value, int):
                raise
            out.append(rbigint.int_to_decimal(value))
    return "".join(out)


@aot("rbigint.fromint", "L", "pure")
def _big_fromint(ctx, value):
    ctx.charge(insns.mix(alu=6, store=2))
    return BigInt.fromint(value)


@aot("rbigint.fits_int", "L", "pure")
def _big_fits(ctx, big):
    ctx.charge(insns.mix(alu=4, load=2))
    return big.fits_int()


@aot("rbigint.toint", "L", "pure")
def _big_toint(ctx, big):
    ctx.charge(insns.mix(alu=4, load=2))
    return big.toint()


@aot("rbigint.is_zero", "L", "pure")
def _big_is_zero(ctx, big):
    ctx.charge(insns.mix(alu=1, load=1))
    return big.sign == 0


@aot("floor", "C", "pure")
def _c_floor(ctx, value):
    import math

    ctx.charge(insns.mix(fpu=3, alu=2))
    return math.floor(value) * 1.0


@aot("fmod", "C", "pure")
def _c_fmod(ctx, a, b):
    import math

    ctx.charge(insns.mix(fpu=8, alu=3))
    if b == 0.0:
        raise GuestError("float modulo by zero")
    return math.fmod(a, b)


@aot("rstr.ll_strcmp", "R", "pure")
def _str_cmp(ctx, a, b):
    charge_loop(ctx, max(1, min(len(a), len(b))), insns.mix(alu=2, load=2))
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class GuestTypeError(GuestError):
    pass


class OpsMixin(object):
    """Operator implementations, mixed into the TinyPy VM.

    Requires ``self.llops``, ``self.ctx`` and the VM-level helpers
    (``str_of``, ``call_function``) to be available.
    """

    # -- unwrapping helpers ----------------------------------------------------

    def int_val(self, w_obj):
        return self.llops.getfield(w_obj, "intval")

    def float_val(self, w_obj):
        return self.llops.getfield(w_obj, "floatval")

    def str_val(self, w_obj):
        return self.llops.getfield(w_obj, "strval")

    def big_val(self, w_obj):
        return self.llops.getfield(w_obj, "bigval")

    def wrap_int(self, value):
        return self.llops.new(W_Int, intval=value)

    def wrap_float(self, value):
        return self.llops.new(W_Float, floatval=value)

    def wrap_str(self, value):
        return self.llops.new(W_Str, strval=value)

    def wrap_big(self, bigval):
        """Box a BigInt, normalizing back to W_Int when it fits."""
        llops = self.llops
        fits = llops.residual_call(_big_fits, bigval)
        if llops.is_true(fits):
            return self.wrap_int(llops.residual_call(_big_toint, bigval))
        return llops.new(W_BigInt, bigval=bigval)

    def to_big(self, w_obj, cls):
        """BigInt payload of an int-like box."""
        llops = self.llops
        if is_intish(cls):
            return llops.residual_call(_big_fromint, self.int_val(w_obj))
        return self.big_val(w_obj)

    def type_error(self, operation, cls_a, cls_b=None):
        names = cls_a.__name__ if cls_b is None else "%s, %s" % (
            cls_a.__name__, cls_b.__name__)
        raise GuestTypeError("unsupported operand type(s) for %s: %s"
                             % (operation, names))

    # -- arithmetic --------------------------------------------------------------

    def binary_add(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a):
            if is_intish(cls_b):
                a = self.int_val(w_a)
                b = self.int_val(w_b)
                try:
                    return self.wrap_int(llops.int_add_ovf(a, b))
                except LLOverflow:
                    return self._big_arith(rbigint.big_add, w_a, w_b,
                                           cls_a, cls_b)
            if cls_b is W_Float:
                return self.wrap_float(llops.float_add(
                    llops.cast_int_to_float(self.int_val(w_a)),
                    self.float_val(w_b)))
            if cls_b is W_BigInt:
                return self._big_arith(rbigint.big_add, w_a, w_b,
                                       cls_a, cls_b)
        elif cls_a is W_Float:
            if cls_b is W_Float:
                return self.wrap_float(llops.float_add(
                    self.float_val(w_a), self.float_val(w_b)))
            if is_intish(cls_b):
                return self.wrap_float(llops.float_add(
                    self.float_val(w_a),
                    llops.cast_int_to_float(self.int_val(w_b))))
        elif cls_a is W_Str:
            if cls_b is W_Str:
                return self.wrap_str(llops.unicode_concat(
                    self.str_val(w_a), self.str_val(w_b)))
        elif cls_a is W_BigInt:
            if is_intish(cls_b) or cls_b is W_BigInt:
                return self._big_arith(rbigint.big_add, w_a, w_b,
                                       cls_a, cls_b)
        elif cls_a is W_List and cls_b is W_List:
            return self.list_concat(w_a, w_b)
        elif cls_a is W_Tuple and cls_b is W_Tuple:
            return self.tuple_concat(w_a, w_b)
        self.type_error("+", cls_a, cls_b)

    def _big_arith(self, big_fn, w_a, w_b, cls_a, cls_b):
        llops = self.llops
        big_a = self.to_big(w_a, cls_a)
        big_b = self.to_big(w_b, cls_b)
        return self.wrap_big(llops.residual_call(big_fn, big_a, big_b))

    def binary_sub(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if cls_a is W_Set and cls_b is W_Set:
            return self.set_binop("-", w_a, w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            try:
                return self.wrap_int(llops.int_sub_ovf(
                    self.int_val(w_a), self.int_val(w_b)))
            except LLOverflow:
                return self._big_arith(rbigint.big_sub, w_a, w_b,
                                       cls_a, cls_b)
        return self._float_or_big(
            "-", llops.float_sub, rbigint.big_sub, w_a, w_b, cls_a, cls_b)

    def binary_mul(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            try:
                return self.wrap_int(llops.int_mul_ovf(
                    self.int_val(w_a), self.int_val(w_b)))
            except LLOverflow:
                return self._big_arith(rbigint.big_mul, w_a, w_b,
                                       cls_a, cls_b)
        if cls_a is W_Str and is_intish(cls_b):
            return self.wrap_str(llops.residual_call(
                rstr.ll_mul, self.str_val(w_a), self.int_val(w_b)))
        if cls_a is W_List and is_intish(cls_b):
            return self.list_repeat(w_a, w_b)
        return self._float_or_big(
            "*", llops.float_mul, rbigint.big_mul, w_a, w_b, cls_a, cls_b)

    def _float_or_big(self, symbol, float_op, big_fn, w_a, w_b,
                      cls_a, cls_b):
        llops = self.llops
        if cls_a is W_Float or cls_b is W_Float:
            return self.wrap_float(float_op(
                self.as_float(w_a, cls_a), self.as_float(w_b, cls_b)))
        if (cls_a is W_BigInt or cls_b is W_BigInt) and \
                (is_intish(cls_a) or cls_a is W_BigInt) and \
                (is_intish(cls_b) or cls_b is W_BigInt):
            return self._big_arith(big_fn, w_a, w_b, cls_a, cls_b)
        self.type_error(symbol, cls_a, cls_b)

    def as_float(self, w_obj, cls):
        llops = self.llops
        if cls is W_Float:
            return self.float_val(w_obj)
        if is_intish(cls):
            return llops.cast_int_to_float(self.int_val(w_obj))
        self.type_error("float", cls)

    def binary_floordiv(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            b = self.int_val(w_b)
            if llops.is_true(llops.int_is_true(b)):
                a = self.int_val(w_a)
                # Python floor semantics from C-style division.
                q = llops.int_floordiv(a, b)
                r = llops.int_sub(a, llops.int_mul(q, b))
                neg = llops.int_ne(r, 0)
                if llops.is_true(neg):
                    sign_differs = llops.int_lt(llops.int_xor(a, b), 0)
                    if llops.is_true(sign_differs):
                        q = llops.int_sub(q, 1)
                return self.wrap_int(q)
            raise GuestError("integer division by zero")
        if cls_a is W_Float or cls_b is W_Float:
            a = self.as_float(w_a, cls_a)
            b = self.as_float(w_b, cls_b)
            quotient = llops.float_truediv(a, b)
            return self.wrap_float(llops.residual_call(_c_floor, quotient))
        if cls_a is W_BigInt or cls_b is W_BigInt:
            return self._big_arith(rbigint.big_floordiv, w_a, w_b,
                                   cls_a, cls_b)
        self.type_error("//", cls_a, cls_b)

    def binary_mod(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            b = self.int_val(w_b)
            if llops.is_true(llops.int_is_true(b)):
                a = self.int_val(w_a)
                r = llops.int_mod(a, b)
                nonzero = llops.int_ne(r, 0)
                if llops.is_true(nonzero):
                    sign_differs = llops.int_lt(llops.int_xor(a, b), 0)
                    if llops.is_true(sign_differs):
                        r = llops.int_add(r, b)
                return self.wrap_int(r)
            raise GuestError("integer modulo by zero")
        if cls_a is W_Str:
            return self.str_mod(w_a, w_b)
        if cls_a is W_Float or cls_b is W_Float:
            a = self.as_float(w_a, cls_a)
            b = self.as_float(w_b, cls_b)
            return self.wrap_float(llops.residual_call(_c_fmod, a, b))
        if cls_a is W_BigInt or cls_b is W_BigInt:
            return self._big_arith(rbigint.big_mod, w_a, w_b, cls_a, cls_b)
        self.type_error("%", cls_a, cls_b)

    def binary_truediv(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        a = self.as_float(w_a, cls_a)
        b = self.as_float(w_b, cls_b)
        zero = llops.float_eq(b, 0.0)
        if llops.is_true(zero):
            raise GuestError("division by zero")
        return self.wrap_float(llops.float_truediv(a, b))

    def binary_pow(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            result = llops.residual_call(
                int_pow, self.int_val(w_a), self.int_val(w_b))
            return self.wrap_big(result)
        a = self.as_float(w_a, cls_a)
        b = self.as_float(w_b, cls_b)
        return self.wrap_float(llops.residual_call(cmath.c_pow, a, b))

    def _int_bitop(self, symbol, ll_op, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            return self.wrap_int(ll_op(self.int_val(w_a), self.int_val(w_b)))
        if cls_a is W_Set and cls_b is W_Set:
            return self.set_binop(symbol, w_a, w_b)
        if cls_a is W_BigInt or cls_b is W_BigInt:
            if symbol == "<<" and is_intish(cls_b):
                big_a = self.to_big(w_a, cls_a)
                return self.wrap_big(llops.residual_call(
                    rbigint.big_lshift, big_a, self.int_val(w_b)))
            if symbol == ">>" and is_intish(cls_b):
                big_a = self.to_big(w_a, cls_a)
                return self.wrap_big(llops.residual_call(
                    rbigint.big_rshift, big_a, self.int_val(w_b)))
            if symbol in ("&", "|", "^") and (
                    is_intish(cls_a) or cls_a is W_BigInt) and (
                    is_intish(cls_b) or cls_b is W_BigInt):
                big_fn = {"&": rbigint.big_and, "|": rbigint.big_or,
                          "^": rbigint.big_xor}[symbol]
                return self.wrap_big(llops.residual_call(
                    big_fn, self.to_big(w_a, cls_a),
                    self.to_big(w_b, cls_b)))
        self.type_error(symbol, cls_a, cls_b)

    def binary_and(self, w_a, w_b):
        return self._int_bitop("&", self.llops.int_and, w_a, w_b)

    def binary_or(self, w_a, w_b):
        return self._int_bitop("|", self.llops.int_or, w_a, w_b)

    def binary_xor(self, w_a, w_b):
        return self._int_bitop("^", self.llops.int_xor, w_a, w_b)

    def binary_lshift(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            a = self.int_val(w_a)
            b = self.int_val(w_b)
            # Overflow-checked shift: a << b == a * 2^b.
            small = llops.int_lt(b, 40)
            if llops.is_true(small):
                try:
                    return self.wrap_int(llops.int_mul_ovf(
                        a, llops.int_lshift(1, b)))
                except LLOverflow:
                    pass
            big_a = llops.residual_call(_big_fromint, a)
            return self.wrap_big(llops.residual_call(
                rbigint.big_lshift, big_a, b))
        return self._int_bitop("<<", None, w_a, w_b)

    def binary_rshift(self, w_a, w_b):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            return self.wrap_int(llops.int_rshift(
                self.int_val(w_a), self.int_val(w_b)))
        return self._int_bitop(">>", None, w_a, w_b)

    def unary_neg(self, w_a):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        if is_intish(cls_a):
            try:
                return self.wrap_int(llops.int_sub_ovf(0, self.int_val(w_a)))
            except LLOverflow:
                big = llops.residual_call(_big_fromint, self.int_val(w_a))
                return self.wrap_big(llops.residual_call(rbigint.big_neg, big))
        if cls_a is W_Float:
            return self.wrap_float(llops.float_neg(self.float_val(w_a)))
        if cls_a is W_BigInt:
            return self.wrap_big(llops.residual_call(
                rbigint.big_neg, self.big_val(w_a)))
        self.type_error("-", cls_a)

    def unary_invert(self, w_a):
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        if is_intish(cls_a):
            return self.wrap_int(llops.int_invert(self.int_val(w_a)))
        self.type_error("~", cls_a)

    # -- truth and comparison -------------------------------------------------------

    def is_true_w(self, w_obj):
        """Guest truthiness as a raw bool (guards recorded)."""
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if is_intish(cls):
            return llops.is_true(llops.int_is_true(self.int_val(w_obj)))
        if cls is W_None:
            return False
        if cls is W_Float:
            return llops.is_true(llops.float_ne(self.float_val(w_obj), 0.0))
        if cls is W_Str:
            return llops.is_true(llops.int_is_true(
                llops.unicodelen(self.str_val(w_obj))))
        if cls is W_List:
            storage = llops.getfield(w_obj, "storage")
            return llops.is_true(llops.int_is_true(llops.arraylen(storage)))
        if cls is W_Tuple:
            items = llops.getfield(w_obj, "items")
            return llops.is_true(llops.int_is_true(llops.arraylen(items)))
        if cls is W_Dict or cls is W_Set:
            rdict = llops.getfield(w_obj, "rdict")
            from repro.rlib.rordereddict import ll_dict_len

            length = llops.residual_call(ll_dict_len, rdict)
            return llops.is_true(llops.int_is_true(length))
        if cls is W_BigInt:
            big = self.big_val(w_obj)
            zero = llops.residual_call(_big_is_zero, big)
            return not llops.is_true(zero)
        return True  # instances, functions, classes are truthy

    def compare(self, opname, w_a, w_b):
        """opname in {lt, le, eq, ne, gt, ge}; returns w_True/w_False."""
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            flag = getattr(llops, "int_" + opname)(
                self.int_val(w_a), self.int_val(w_b))
            return wrap_bool(llops.is_true(flag))
        if (cls_a is W_Float or cls_b is W_Float) and \
                (cls_a is W_Float or is_intish(cls_a)) and \
                (cls_b is W_Float or is_intish(cls_b)):
            flag = getattr(llops, "float_" + opname)(
                self.as_float(w_a, cls_a), self.as_float(w_b, cls_b))
            return wrap_bool(llops.is_true(flag))
        if cls_a is W_Str and cls_b is W_Str:
            return self.str_compare(opname, w_a, w_b)
        if (cls_a is W_BigInt or cls_b is W_BigInt) and \
                (is_intish(cls_a) or cls_a is W_BigInt) and \
                (is_intish(cls_b) or cls_b is W_BigInt):
            return self.big_compare(opname, w_a, w_b, cls_a, cls_b)
        if opname == "eq" or opname == "ne":
            return self.generic_eq(opname, w_a, w_b, cls_a, cls_b)
        if cls_a is W_List and cls_b is W_List:
            return self.list_compare(opname, w_a, w_b)
        if cls_a is W_Tuple and cls_b is W_Tuple:
            return self.tuple_compare(opname, w_a, w_b)
        self.type_error(opname, cls_a, cls_b)

    def str_compare(self, opname, w_a, w_b):
        llops = self.llops
        a = self.str_val(w_a)
        b = self.str_val(w_b)
        if opname == "eq":
            return wrap_bool(llops.is_true(llops.unicode_eq(a, b)))
        if opname == "ne":
            return wrap_bool(not llops.is_true(llops.unicode_eq(a, b)))
        flag = llops.residual_call(_str_cmp, a, b)
        return self._cmp_from_sign(opname, flag)

    def _cmp_from_sign(self, opname, sign):
        llops = self.llops
        if opname == "lt":
            return wrap_bool(llops.is_true(llops.int_lt(sign, 0)))
        if opname == "le":
            return wrap_bool(llops.is_true(llops.int_le(sign, 0)))
        if opname == "gt":
            return wrap_bool(llops.is_true(llops.int_gt(sign, 0)))
        if opname == "ge":
            return wrap_bool(llops.is_true(llops.int_ge(sign, 0)))
        raise AssertionError(opname)

    def big_compare(self, opname, w_a, w_b, cls_a, cls_b):
        llops = self.llops
        big_a = self.to_big(w_a, cls_a)
        big_b = self.to_big(w_b, cls_b)
        if opname in ("eq", "ne"):
            flag = llops.is_true(llops.residual_call(
                rbigint.big_eq, big_a, big_b))
            return wrap_bool(flag if opname == "eq" else not flag)
        less = llops.is_true(llops.residual_call(
            rbigint.big_lt, big_a, big_b))
        equal = llops.is_true(llops.residual_call(
            rbigint.big_eq, big_a, big_b))
        if opname == "lt":
            return wrap_bool(less)
        if opname == "le":
            return wrap_bool(less or equal)
        if opname == "gt":
            return wrap_bool(not less and not equal)
        return wrap_bool(not less)

    def generic_eq(self, opname, w_a, w_b, cls_a, cls_b):
        flag = self.eq_w(w_a, w_b)
        return wrap_bool(flag if opname == "eq" else not flag)

    def eq_w(self, w_a, w_b):
        """Guest equality as a raw bool."""
        llops = self.llops
        cls_a = llops.cls_of(w_a)
        cls_b = llops.cls_of(w_b)
        if is_intish(cls_a) and is_intish(cls_b):
            return llops.is_true(llops.int_eq(
                self.int_val(w_a), self.int_val(w_b)))
        if cls_a is W_Str and cls_b is W_Str:
            return llops.is_true(llops.unicode_eq(
                self.str_val(w_a), self.str_val(w_b)))
        if cls_a is W_Float or cls_b is W_Float:
            if (cls_a is W_Float or is_intish(cls_a)) and \
                    (cls_b is W_Float or is_intish(cls_b)):
                return llops.is_true(llops.float_eq(
                    self.as_float(w_a, cls_a), self.as_float(w_b, cls_b)))
            return False
        if cls_a is W_None or cls_b is W_None:
            return llops.is_true(llops.ptr_eq(w_a, w_b))
        if cls_a is W_Tuple and cls_b is W_Tuple:
            return self.tuple_eq(w_a, w_b)
        if cls_a is W_BigInt or cls_b is W_BigInt:
            if (is_intish(cls_a) or cls_a is W_BigInt) and \
                    (is_intish(cls_b) or cls_b is W_BigInt):
                return llops.is_true(llops.residual_call(
                    rbigint.big_eq,
                    self.to_big(w_a, cls_a), self.to_big(w_b, cls_b)))
            return False
        if cls_a is W_List and cls_b is W_List:
            return self.list_eq(w_a, w_b)
        return llops.is_true(llops.ptr_eq(w_a, w_b))
