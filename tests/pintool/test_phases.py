import pytest

from repro.core import tags
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.pintool.phases import (
    BLACKHOLE,
    GC,
    INTERP,
    JIT,
    JIT_CALL,
    PHASE_NAMES,
    TRACING,
    PhaseTracker,
)
from repro.uarch.machine import Machine


@pytest.fixture
def setup():
    machine = Machine(SystemConfig())
    tracker = PhaseTracker(machine, record_timeline=True)
    machine.add_annot_listener(tracker.on_annot)
    return machine, tracker


def test_starts_in_interp(setup):
    _machine, tracker = setup
    assert tracker.current_phase == INTERP


def test_phase_transitions(setup):
    machine, tracker = setup
    machine.annot(tags.TRACE_START)
    assert tracker.current_phase == TRACING
    machine.annot(tags.TRACE_STOP)
    assert tracker.current_phase == INTERP
    machine.annot(tags.JIT_ENTER)
    assert tracker.current_phase == JIT
    machine.annot(tags.JIT_CALL_START, ("f", "R"))
    assert tracker.current_phase == JIT_CALL
    machine.annot(tags.JIT_CALL_STOP)
    assert tracker.current_phase == JIT
    machine.annot(tags.BLACKHOLE_START)
    assert tracker.current_phase == BLACKHOLE
    machine.annot(tags.BLACKHOLE_STOP)
    machine.annot(tags.JIT_LEAVE)
    assert tracker.current_phase == INTERP


def test_gc_nests_anywhere(setup):
    machine, tracker = setup
    machine.annot(tags.JIT_ENTER)
    machine.annot(tags.GC_MINOR_START)
    assert tracker.current_phase == GC
    machine.annot(tags.GC_MINOR_STOP)
    assert tracker.current_phase == JIT


def test_attribution(setup):
    machine, tracker = setup
    machine.exec_mix(insns.mix(alu=100))
    machine.annot(tags.JIT_ENTER)
    machine.exec_mix(insns.mix(alu=400))
    machine.annot(tags.JIT_LEAVE)
    tracker.finish()
    interp_window = tracker.windows[INTERP]
    jit_window = tracker.windows[JIT]
    assert interp_window.instructions >= 100
    assert jit_window.instructions >= 400
    assert jit_window.instructions < 410


def test_breakdown_sums_to_one(setup):
    machine, tracker = setup
    machine.exec_mix(insns.mix(alu=10))
    machine.annot(tags.TRACE_START)
    machine.exec_mix(insns.mix(alu=30))
    machine.annot(tags.TRACE_STOP)
    tracker.finish()
    breakdown = tracker.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["tracing"] > breakdown["interp"]
    insn_breakdown = tracker.insn_breakdown()
    assert sum(insn_breakdown.values()) == pytest.approx(1.0)


def test_empty_breakdown():
    machine = Machine(SystemConfig())
    tracker = PhaseTracker(machine)
    tracker.finish()
    assert set(tracker.breakdown()) == set(PHASE_NAMES)
    assert sum(tracker.breakdown().values()) == 0.0
    assert sum(tracker.insn_breakdown().values()) == 0.0


def test_unbalanced_stop_tolerated(setup):
    machine, tracker = setup
    machine.annot(tags.JIT_LEAVE)  # never entered
    assert tracker.current_phase == INTERP


def test_timeline_segments(setup):
    machine, tracker = setup
    machine.exec_mix(insns.mix(alu=1000))
    machine.annot(tags.JIT_ENTER)
    machine.exec_mix(insns.mix(alu=1000))
    machine.annot(tags.JIT_LEAVE)
    tracker.finish()
    segments = tracker.timeline_segments(n_buckets=10)
    assert segments
    for bucket in segments:
        assert sum(bucket.values()) == pytest.approx(1.0)
    # Early buckets are interpreter-dominated, late ones JIT-dominated.
    assert segments[0]["interp"] > 0.9
    assert segments[-1]["jit"] > 0.9


def test_phase_window_properties():
    from repro.pintool.phases import PhaseWindow

    window = PhaseWindow()
    assert window.ipc == 0.0
    assert window.branches_per_insn == 0.0
    assert window.branch_miss_rate == 0.0
    window.instructions = 100
    window.cycles = 50.0
    window.branches = 20
    window.branch_misses = 2
    assert window.ipc == 2.0
    assert window.branches_per_insn == 0.2
    assert window.branch_miss_rate == 0.1
