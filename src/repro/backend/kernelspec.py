"""The kernel spec: one source of truth for the machine's fused kernels.

The simulation hot loop is four fused dispatch kernels
(``dispatch_event``, ``dispatch_event2``, ``dispatch_run``,
``quick_run``) whose bodies share three delicate code fragments:

* the **bulk-branch miss-carry** accounting (``misses_exact = count *
  rate + carry; misses = int(misses_exact); carry = misses_exact -
  misses`` — the fractional carry is machine-global float state),
* the **block charge** (instruction/stall/cycle retire of one
  :class:`~repro.uarch.blocks.BlockDescr`),
* the **inlined BTB** indirect-jump predictor update.

Historically each kernel carried its own hand-expanded copy; a fix to
one could silently miss the others.  This module is the anti-drift
mechanism: every fragment is emitted exactly once (as source text) and
every kernel — the reference methods installed on
:class:`repro.uarch.machine.Machine` *and* the exec-specialized kernels
of the ``fast`` backend — is generated from those fragments.  The C
runtime of the ``native`` backend mirrors the same fragments as C
macros (see :mod:`repro.backend.cgen`); the backend equivalence suite
pins all three bit-identical.

Floating-point discipline (the bit-identity contract): generated code
must perform the *same IEEE-754 double operations in the same order* as
the seed's unfused event sequence.  Integer counters are associative
and may be hoisted; the ``cycles`` accumulator and the bulk-miss carry
may not.
"""

from repro.isa import insns

_NOP_ANNOT = insns.NOP_ANNOT
_BR_IND = insns.BR_IND
_BR_COND = insns.BR_COND


def _indent(text, pad):
    return "\n".join(pad + line if line.strip() else line
                     for line in text.splitlines())


# -- shared fragments ------------------------------------------------------------


def emit_bulk_miss_carry(count_expr, rate="bulk_rate"):
    """The bulk-branch miss-carry accounting, emitted exactly once.

    Expects/updates the locals ``carry`` and ``branch_misses``; leaves
    ``misses`` (the integer miss count) defined for the caller's cycle
    charge.  This is the fragment that used to be triplicated across
    ``dispatch_event``/``dispatch_event2``/``dispatch_run``.
    """
    return (
        "misses_exact = %s * %s + carry\n"
        "misses = int(misses_exact)\n"
        "carry = misses_exact - misses\n"
        "branch_misses += misses" % (count_expr, rate)
    )


def emit_block_charge(bvar, insns_var=None, count_expr="1"):
    """Retire one :class:`BlockDescr` into the shared locals.

    Expects the locals ``cycles``, ``branches``, ``branch_misses``,
    ``carry``, ``bulk_rate`` and ``penalty``; optionally accumulates the
    instruction count into ``insns_var``.
    """
    lines = ["%s.count += %s" % (bvar, count_expr)]
    if insns_var:
        lines.append("%s += %s.n_insns" % (insns_var, bvar))
    lines.append("bulk = %s.bulk_count" % bvar)
    lines.append("if bulk:")
    lines.append("    branches += bulk")
    lines.append(_indent(emit_bulk_miss_carry("bulk"), "    "))
    lines.append("    cycles += %s.insn_cycles + (" % bvar)
    lines.append("        %s.stall_cycles + misses * penalty)" % bvar)
    lines.append("else:")
    lines.append("    cycles += %s.flat_cycles" % bvar)
    return "\n".join(lines)


def emit_hoisted_block_charge():
    """The run-loop variant of the dispatch-mix charge.

    The loop header precomputed ``b_bulk``/``b_base``/``b_stall``/
    ``b_flat`` and bulk-hoisted ``b.count`` and the branch totals; only
    the order-sensitive float work stays in the loop body.
    """
    return (
        "if b_bulk:\n"
        + _indent(emit_bulk_miss_carry("b_bulk"), "    ")
        + "\n    cycles += b_base + (b_stall + misses * penalty)\n"
        "else:\n"
        "    cycles += b_flat"
    )


def emit_btb_jump(per_event=True):
    """The inlined BTB indirect-jump predict-and-update.

    Expects ``history``/``mask``/``targets`` hoisted from the Btb and
    the shared ``cycles``/``branch_misses``/``penalty`` locals; run
    kernels hoist the per-item instruction/branch/class increments.
    """
    lines = []
    if per_event:
        lines += ["insns_total += 1",
                  "branches += 1",
                  "counts[%d] += 1" % _BR_IND]
    lines += [
        "cycles += inv_width",
        "index = (pc ^ history) & mask",
        "if targets[index] != target:",
        "    branch_misses += 1",
        "    cycles += penalty",
        "targets[index] = target",
        "history = ((history << 3) ^ (target & 0x3FF)) & mask",
    ]
    return "\n".join(lines)


def emit_annot_unroll(n="n"):
    """The 8x-unrolled annotation-run cycle accumulation.

    The same left-to-right sequence of float additions as ``for _ in
    range(n): cycles += inv_width`` (a single multiply would round
    differently at binade crossings), with 8x fewer host iterations.
    """
    add8 = "\n".join(["        cycles += inv_width"] * 8)
    return (
        "if %(n)s == 1:\n"
        "    cycles += inv_width\n"
        "else:\n"
        "    i = %(n)s\n"
        "    while i >= 8:\n"
        "%(add8)s\n"
        "        i -= 8\n"
        "    for _ in range(i):\n"
        "        cycles += inv_width" % {"n": n, "add8": add8}
    )


# -- reference kernels (installed on Machine) ------------------------------------


_EVENT_DOC = {
    False: '''\
"""Fused interpreter-dispatch event: annot + block + indirect jump.

One call replicating the seed's per-bytecode sequence
``annot(tag); exec_mix(mix); indirect(pc, target)`` — same
counter updates, same float-operation order, same limit-check
points.  The indirect jump still drives the real BTB, preserving
the sequential-predictor-state invariant.  [generated by
repro.backend.kernelspec]
"""''',
    True: '''\
"""Dispatch event with the handler's static mix fused in.

Extends :meth:`dispatch_event` with the retire of ``b2`` — the
opcode handler's fixed cost block, which in the unfused VM the
handler charged as its first machine-visible action right after
the dispatch sequence.  Event order is unchanged: annot, dispatch
mix, indirect jump, handler mix.  [generated by
repro.backend.kernelspec]
"""''',
}


def _reference_event_source(two_blocks):
    name = "dispatch_event2" if two_blocks else "dispatch_event"
    args = "self, tag, b, pc, target, b2" if two_blocks \
        else "self, tag, b, pc, target"
    cost = "2 + b.n_insns + b2.n_insns" if two_blocks else "2 + b.n_insns"
    body = [
        "def %s(%s):" % (name, args),
        _indent(_EVENT_DOC[two_blocks], "    "),
        "    # annot(tag) — per-primitive path when a listener may snapshot",
        "    # (no batched variant) or the event could cross the limit;",
        "    # otherwise counters accumulate in locals and runners (batched",
        "    # listener variants) are notified once after writeback, exactly",
        "    # like a one-item dispatch_run.",
        "    inv_width = self._inv_width",
        "    counts = self._class_counts",
        "    listeners = self._tag_listeners.get(tag)",
        "    runners = None",
        "    if listeners is not None:",
        "        runners = self._tag_runners.get(tag)",
        "    max_instructions = self.max_instructions",
        "    if (self._annot_listeners",
        "            or (listeners is not None and runners is None)",
        "            or (max_instructions",
        "                and self.instructions + %s" % cost,
        "                >= max_instructions)):",
        "        runners = None  # listeners notified per-primitive, here",
        "        self.instructions += 1",
        "        self.annotations += 1",
        "        counts[%d] += 1" % _NOP_ANNOT,
        "        self.cycles += inv_width",
        "        if listeners is not None:",
        "            for listener in listeners:",
        "                listener(tag, None)",
        "        for listener in self._annot_listeners:",
        "            listener(tag, None)",
        "        insns_total = self.instructions",
        "        cycles = self.cycles",
        "        if max_instructions and insns_total >= max_instructions:",
        "            raise SimulationLimitReached(insns_total)",
        "    else:",
        "        self.annotations += 1",
        "        counts[%d] += 1" % _NOP_ANNOT,
        "        insns_total = self.instructions + 1",
        "        cycles = self.cycles + inv_width",
        "    penalty = self.mispredict_penalty",
        "    bulk_rate = self.bulk_miss_rate",
        "    carry = self._bulk_miss_carry",
        "    branches = self.branches",
        "    branch_misses = self.branch_misses",
        "    # exec_block(b) — the dispatch mix",
        _indent(emit_block_charge("b", insns_var="insns_total"), "    "),
        "    if max_instructions and insns_total >= max_instructions:",
        "        self.instructions = insns_total",
        "        self.cycles = cycles",
        "        self.branches = branches",
        "        self.branch_misses = branch_misses",
        "        self._bulk_miss_carry = carry",
        "        raise SimulationLimitReached(insns_total)",
        "    # indirect(pc, target) — BTB inlined (always a Btb instance)",
        "    btb = self.btb",
        "    history = btb.history",
        "    mask = btb.mask",
        "    targets = btb.targets",
        _indent(emit_btb_jump(per_event=True), "    "),
        "    btb.history = history",
    ]
    if two_blocks:
        body += [
            "    # exec_block(b2) — the handler's static mix",
            _indent(emit_block_charge("b2", insns_var="insns_total"), "    "),
        ]
    body += [
        "    self.instructions = insns_total",
        "    self.cycles = cycles",
        "    self.branches = branches",
        "    self.branch_misses = branch_misses",
        "    self._bulk_miss_carry = carry",
    ]
    if two_blocks:
        body += [
            "    if max_instructions and insns_total >= max_instructions:",
            "        raise SimulationLimitReached(insns_total)",
        ]
    body += [
        "    if runners is not None:",
        "        for run in runners:",
        "            run(tag, None, 1)",
    ]
    return "\n".join(body)


_RUN_DOC = {
    "run": '''\
"""Retire a straight-line run of fused dispatch events in one call.

``items`` is a static tuple of ``(pc, target, b2)`` triples — one
per guest bytecode in a branch-free run whose handlers make no
machine calls of their own — and ``n_insns`` is the precomputed
total instruction count of the run (for the limit precheck).
The loop body repeats the exact :meth:`dispatch_event2` sequence
per item, so every counter and every predictor update retires in
the same order with the same float arithmetic; only the Python
call boundaries between items disappear.

Like :meth:`annot_run`, the batched path requires every listener
on ``tag`` to provide a batched ``run`` variant and no catch-all
annotation listeners; otherwise — or when the run could cross
``max_instructions`` — it falls back to per-event calls, which
preserve exact listener and limit semantics.  [generated by
repro.backend.kernelspec]
"""''',
    "quick": '''\
"""Retire a quickened run of dispatch events + handler block charges.

Generalizes :meth:`dispatch_run` to handlers whose static cost is
a *sequence* of block charges rather than one fused block:
``items`` is a static tuple of ``(pc, target, blocks)`` triples
where ``blocks`` is the tuple of :class:`BlockDescr` charges the
unquickened handler would have issued, in order.  The body
replays exactly ``dispatch_event(tag, b, pc, target)`` followed
by ``exec_block(blk)`` per block — same counter updates, same
float-operation order, same predictor state — so the result is
bit-identical; only the Python call boundaries disappear.

Same gating as :meth:`dispatch_run`: catch-all listeners, tag
listeners without batched ``run`` variants, or a possible
``max_instructions`` crossing fall back to per-event calls,
which preserve exact listener and mid-run limit semantics.
[generated by repro.backend.kernelspec]
"""''',
}


def _reference_run_source(kind):
    quick = kind == "quick"
    name = "quick_run" if quick else "dispatch_run"
    item = "blocks" if quick else "b2"
    body = [
        "def %s(self, tag, b, items, n_insns):" % name,
        _indent(_RUN_DOC[kind], "    "),
        "    tag_listeners = self._tag_listeners.get(tag)",
        "    runners = None",
        "    if tag_listeners is not None:",
        "        runners = self._tag_runners.get(tag)",
        "    max_instructions = self.max_instructions",
        "    if (self._annot_listeners",
        "            or (tag_listeners is not None and runners is None)",
        "            or (max_instructions",
        "                and self.instructions + n_insns"
        " >= max_instructions)):",
    ]
    if quick:
        body += [
            "        dispatch_event = self.dispatch_event",
            "        exec_block = self.exec_block",
            "        for pc, target, blocks in items:",
            "            dispatch_event(tag, b, pc, target)",
            "            for blk in blocks:",
            "                exec_block(blk)",
            "        return",
        ]
    else:
        body += [
            "        dispatch_event2 = self.dispatch_event2",
            "        for pc, target, b2 in items:",
            "            dispatch_event2(tag, b, pc, target, b2)",
            "        return",
        ]
    body += [
        "    # Integer counters are associative, so instruction totals and",
        "    # the per-item BTB branch retires hoist out of the loop; only",
        "    # the float cycle adds and the bulk-miss carry must stay in",
        "    # per-event order to keep the accumulation bit-identical.",
        "    n = len(items)",
        "    counts = self._class_counts",
        "    inv_width = self._inv_width",
        "    penalty = self.mispredict_penalty",
        "    bulk_rate = self.bulk_miss_rate",
        "    carry = self._bulk_miss_carry",
        "    cycles = self.cycles",
        "    branches = self.branches + n",
        "    branch_misses = self.branch_misses",
        "    btb = self.btb",
        "    history = btb.history",
        "    mask = btb.mask",
        "    targets = btb.targets",
        "    b_bulk = b.bulk_count",
        "    b_flat = b.flat_cycles",
        "    b.count += n",
        "    counts[%d] += n" % _NOP_ANNOT,
        "    counts[%d] += n" % _BR_IND,
        "    self.annotations += n",
        "    self.instructions += n_insns",
        "    if b_bulk:",
        "        branches += b_bulk * n",
        "        b_base = b.insn_cycles",
        "        b_stall = b.stall_cycles",
        "    for pc, target, %s in items:" % item,
        "        # annot(tag)",
        "        cycles += inv_width",
        "        # exec_block(b) — the dispatch mix",
        _indent(emit_hoisted_block_charge(), "        "),
        "        # indirect(pc, target) — inlined BTB",
        _indent(emit_btb_jump(per_event=False), "        "),
    ]
    if quick:
        body += [
            "        # exec_block(blk) per handler charge, in handler order",
            "        for blk in blocks:",
            _indent(emit_block_charge("blk"), "            "),
        ]
    else:
        body += [
            "        # exec_block(b2) — the handler's static mix",
            _indent(emit_block_charge("b2"), "        "),
        ]
    body += [
        "    btb.history = history",
        "    self.cycles = cycles",
        "    self.branches = branches",
        "    self.branch_misses = branch_misses",
        "    self._bulk_miss_carry = carry",
        "    if runners:",
        "        for run in runners:",
        "            run(tag, None, n)",
    ]
    return "\n".join(body)


def reference_source():
    """Source text of the four generated reference kernels."""
    return "\n\n\n".join([
        _reference_event_source(False),
        _reference_event_source(True),
        _reference_run_source("run"),
        _reference_run_source("quick"),
    ]) + "\n"


def build_reference_methods(limit_exc):
    """Compile the reference dispatch kernels for installation on Machine.

    Returns ``{name: function}`` for ``dispatch_event``,
    ``dispatch_event2``, ``dispatch_run`` and ``quick_run``.
    """
    namespace = {"SimulationLimitReached": limit_exc}
    code = compile(reference_source(), "<kernelspec:reference>", "exec")
    exec(code, namespace)
    return {name: namespace[name]
            for name in ("dispatch_event", "dispatch_event2",
                         "dispatch_run", "quick_run")}


# -- fast-backend kernels (exec-specialized per machine instance) ----------------

# The fast backend builds one closure per kernel per machine instance:
# machine constants (issue width, penalties, predictor tables, the
# class-count list) are bound as closure/default values, and the
# listener/limit gating collapses to one tag-identity + epoch check
# against a per-kernel cache; any per-primitive corner case (catch-all
# listeners, tag listeners without batched variants, limit proximity)
# delegates to the reference method, which replays exact semantics.


def _fast_gate_helpers():
    # Gates are per-kernel dicts mapping tag -> [epoch, decision]: a
    # kernel fed alternating tags (branch_block_annot_run sees every
    # annotation tag the trace charges) keeps one cached decision per
    # tag instead of thrashing a single-entry cache — profiling
    # richards showed a single-entry gate re-deriving on ~10% of all
    # gated calls.  Entries self-invalidate by epoch comparison, so
    # listener mutations need no explicit flush.
    return (
        "    def _gate(cache, tag):\n"
        "        listeners = m._tag_listeners.get(tag)\n"
        "        runners = None\n"
        "        if listeners is not None:\n"
        "            runners = m._tag_runners.get(tag)\n"
        "        if m._annot_listeners or (listeners is not None\n"
        "                                  and runners is None):\n"
        "            decision = _PRIM\n"
        "        else:\n"
        "            decision = runners\n"
        "        cache[tag] = [m._listener_epoch, decision]\n"
        "        return decision\n"
    )


def _fast_event_source(two_blocks):
    name = "dispatch_event2" if two_blocks else "dispatch_event"
    args = "tag, b, pc, target, b2" if two_blocks else "tag, b, pc, target"
    cost = "2 + b.n_insns + b2.n_insns" if two_blocks else "2 + b.n_insns"
    ref = "ref_%s" % name
    lines = [
        "    %s_gate = {}" % name,
        "    def %s(%s, _gc=%s_gate):" % (name, args, name),
        "        ent = _gc.get(tag)",
        "        if ent is not None and ent[0] == m._listener_epoch:",
        "            runners = ent[1]",
        "        else:",
        "            runners = _gate(_gc, tag)",
        "        max_instructions = m.max_instructions",
        "        if runners is _PRIM or (",
        "                max_instructions",
        "                and m.instructions + %s >= max_instructions):" % cost,
        "            return %s(m, %s)" % (ref, args),
        "        # batched path: the limit precheck makes every reference",
        "        # mid-kernel limit test unreachable, so it is elided here.",
        "        m.annotations += 1",
        "        counts[%d] += 1" % _NOP_ANNOT,
        "        insns_total = m.instructions + 1",
        "        cycles = m.cycles + inv_width",
        "        carry = m._bulk_miss_carry",
        "        branches = m.branches",
        "        branch_misses = m.branch_misses",
        "        # exec_block(b) — the dispatch mix",
        _indent(emit_block_charge("b", insns_var="insns_total"), "        "),
        "        # indirect(pc, target) — inlined BTB",
        "        history = btb.history",
        _indent(emit_btb_jump(per_event=True), "        "),
        "        btb.history = history",
    ]
    if two_blocks:
        lines += [
            "        # exec_block(b2) — the handler's static mix",
            _indent(emit_block_charge("b2", insns_var="insns_total"),
                    "        "),
        ]
    lines += [
        "        m.instructions = insns_total",
        "        m.cycles = cycles",
        "        m.branches = branches",
        "        m.branch_misses = branch_misses",
        "        m._bulk_miss_carry = carry",
        "        if runners is not None:",
        "            for run in runners:",
        "                run(tag, None, 1)",
    ]
    return "\n".join(lines)


def _fast_run_source(kind):
    quick = kind == "quick"
    name = "quick_run" if quick else "dispatch_run"
    item = "blocks" if quick else "b2"
    lines = [
        "    %s_gate = {}" % name,
        "    def %s(tag, b, items, n_insns, _gc=%s_gate):" % (name, name),
        "        ent = _gc.get(tag)",
        "        if ent is not None and ent[0] == m._listener_epoch:",
        "            runners = ent[1]",
        "        else:",
        "            runners = _gate(_gc, tag)",
        "        max_instructions = m.max_instructions",
        "        if runners is _PRIM or (",
        "                max_instructions",
        "                and m.instructions + n_insns >= max_instructions):",
        "            return ref_%s(m, tag, b, items, n_insns)" % name,
        "        n = len(items)",
        "        carry = m._bulk_miss_carry",
        "        cycles = m.cycles",
        "        branches = m.branches + n",
        "        branch_misses = m.branch_misses",
        "        history = btb.history",
        "        b_bulk = b.bulk_count",
        "        b_flat = b.flat_cycles",
        "        b.count += n",
        "        counts[%d] += n" % _NOP_ANNOT,
        "        counts[%d] += n" % _BR_IND,
        "        m.annotations += n",
        "        m.instructions += n_insns",
        "        if b_bulk:",
        "            branches += b_bulk * n",
        "            b_base = b.insn_cycles",
        "            b_stall = b.stall_cycles",
        "        for pc, target, %s in items:" % item,
        "            # annot(tag)",
        "            cycles += inv_width",
        "            # exec_block(b) — the dispatch mix",
        _indent(emit_hoisted_block_charge(), "            "),
        "            # indirect(pc, target) — inlined BTB",
        _indent(emit_btb_jump(per_event=False), "            "),
    ]
    if quick:
        lines += [
            "            # exec_block(blk) per handler charge, in order",
            "            for blk in blocks:",
            _indent(emit_block_charge("blk"), "                "),
        ]
    else:
        lines += [
            "            # exec_block(b2) — the handler's static mix",
            _indent(emit_block_charge("b2"), "            "),
        ]
    lines += [
        "        btb.history = history",
        "        m.cycles = cycles",
        "        m.branches = branches",
        "        m.branch_misses = branch_misses",
        "        m._bulk_miss_carry = carry",
        "        if runners:",
        "            for run in runners:",
        "                run(tag, None, n)",
    ]
    return "\n".join(lines)


def _fast_exec_block_source():
    # Unlike the shared block-charge fragment (which assumes its caller
    # already holds the branch counters in locals), a standalone
    # exec_block must not touch them at all on the common non-bulk
    # path.  Even so, the reference method measures faster in situ
    # (exec_block bakes no constants and caches no gate, so the closure
    # only swaps LOAD_FAST self for cell loads); FastMachine binds the
    # reference instead (see fastmachine._REFERENCE_PREFERRED).  The
    # source stays emitted for the microbenchmark tooling and so the
    # preference can be flipped back by measurement alone.
    return "\n".join([
        "    def exec_block(b):",
        "        insns_total = m.instructions + b.n_insns",
        "        b.count += 1",
        "        bulk = b.bulk_count",
        "        if bulk:",
        "            carry = m._bulk_miss_carry",
        "            branch_misses = m.branch_misses",
        "            cycles = m.cycles",
        "            branches = m.branches + bulk",
        _indent(emit_bulk_miss_carry("bulk"), "            "),
        "            m.branches = branches",
        "            m.branch_misses = branch_misses",
        "            m._bulk_miss_carry = carry",
        "            m.cycles = cycles + (b.insn_cycles + (",
        "                b.stall_cycles + misses * penalty))",
        "        else:",
        "            m.cycles += b.flat_cycles",
        "        m.instructions = insns_total",
        "        if m.max_instructions and insns_total >= m.max_instructions:",
        "            raise SimulationLimitReached(insns_total)",
    ])


def _fast_branch_block_source(with_annot_run):
    # Only emitted for gshare machines (the predictor the JIT guard hot
    # path inlines); other predictor kinds keep the reference method.
    name = "branch_block_annot_run" if with_annot_run else "branch_block"
    args = "pc, b, tag, n" if with_annot_run else "pc, b"
    lines = [
        "    def %s(%s):" % (name, args),
        "        insns_total = m.instructions + 1",
        "        branches = m.branches + 1",
        "        branch_misses = m.branch_misses",
        "        counts[%d] += 1" % _BR_COND,
        "        cycles = m.cycles + inv_width",
        "        # Inlined GsharePredictor.predict_and_update(pc, False).",
        "        ghistory = gshare.history",
        "        gindex = (pc ^ ghistory) & gmask",
        "        counter = gtable[gindex]",
        "        if counter > 0:",
        "            gtable[gindex] = counter - 1",
        "        gshare.history = (ghistory << 1) & gmask",
        "        if counter >= 2:",
        "            branch_misses += 1",
        "            cycles += penalty",
        "        carry = m._bulk_miss_carry",
        _indent(emit_block_charge("b", insns_var="insns_total"), "        "),
        "        m.instructions = insns_total",
        "        m.branches = branches",
        "        m.branch_misses = branch_misses",
        "        m.cycles = cycles",
        "        m._bulk_miss_carry = carry",
        "        max_instructions = m.max_instructions",
        "        if max_instructions and insns_total >= max_instructions:",
        "            raise SimulationLimitReached(insns_total)",
    ]
    if with_annot_run:
        lines += [
            "        # annot_run(tag, n) — batched fast path; corner cases",
            "        # delegate to the real method (exact per-annotation",
            "        # listener and limit semantics).",
            "        ent = bba_gate.get(tag)",
            "        if ent is not None and ent[0] == m._listener_epoch:",
            "            runners = ent[1]",
            "        else:",
            "            runners = _gate(bba_gate, tag)",
            "        if runners is _PRIM or (",
            "                max_instructions",
            "                and insns_total + n >= max_instructions):",
            "            m.annot_run(tag, n)",
            "            return",
            "        m.instructions = insns_total + n",
            "        m.annotations += n",
            "        counts[%d] += n" % _NOP_ANNOT,
            _indent(emit_annot_unroll(), "        "),
            "        m.cycles = cycles",
            "        if runners:",
            "            for run in runners:",
            "                run(tag, None, n)",
        ]
    return "\n".join(lines)


def _fast_annot_run_source():
    return "\n".join([
        "    annot_run_gate = {}",
        "    def annot_run(tag, n, payload=None, _gc=annot_run_gate):",
        "        ent = _gc.get(tag)",
        "        if ent is not None and ent[0] == m._listener_epoch:",
        "            runners = ent[1]",
        "        else:",
        "            runners = _gate(_gc, tag)",
        "        max_instructions = m.max_instructions",
        "        if runners is _PRIM or (",
        "                max_instructions",
        "                and m.instructions + n >= max_instructions):",
        "            return ref_annot_run(m, tag, n, payload)",
        "        m.instructions += n",
        "        m.annotations += n",
        "        counts[%d] += n" % _NOP_ANNOT,
        "        cycles = m.cycles",
        _indent(emit_annot_unroll(), "        "),
        "        m.cycles = cycles",
        "        if runners:",
        "            for run in runners:",
        "                run(tag, payload, n)",
    ])


def _fast_mem_source(store, with_annot_run):
    kind = "store" if store else "load"
    name = kind + ("_annot_run" if with_annot_run else "")
    cost = "store_cost" if store else "load_cost"
    counter = "stores" if store else "loads"
    miss = ("cycles += 0.3 * dc_access(addr)" if store
            else "cycles += dc_access(addr)")
    lines = [
        "    def %s(%s):" % (name, "addr, tag, n" if with_annot_run
                             else "addr"),
        "        m.%s += 1" % counter,
        "        counts[%d] += 1" % (insns.STORE if store else insns.LOAD),
        "        cycles = m.cycles + %s" % cost,
        "        line = addr >> l1_shift",
        "        ways = l1_sets[line & l1_mask]",
        "        if ways and ways[0] == line:",
        "            l1.hits += 1  # MRU hit: zero penalty, LRU unchanged",
        "        else:",
        "            %s" % miss,
    ]
    if not with_annot_run:
        lines += [
            "        m.instructions += 1",
            "        m.cycles = cycles",
        ]
        return "\n".join(lines)
    lines += [
        "        insns_total = m.instructions + 1",
        "        _gc = %s_gate" % name,
        "        ent = _gc.get(tag)",
        "        if ent is not None and ent[0] == m._listener_epoch:",
        "            runners = ent[1]",
        "        else:",
        "            runners = _gate(_gc, tag)",
        "        max_instructions = m.max_instructions",
        "        if runners is _PRIM or (",
        "                max_instructions",
        "                and insns_total + n >= max_instructions):",
        "            m.instructions = insns_total",
        "            m.cycles = cycles",
        "            m.annot_run(tag, n)",
        "            return",
        "        m.instructions = insns_total + n",
        "        m.annotations += n",
        "        counts[%d] += n" % _NOP_ANNOT,
        _indent(emit_annot_unroll(), "        "),
        "        m.cycles = cycles",
        "        if runners:",
        "            for run in runners:",
        "                run(tag, None, n)",
    ]
    return "\n".join(lines)


_FAST_KERNELS = (
    "dispatch_event", "dispatch_event2", "dispatch_run", "quick_run",
    "exec_block", "annot_run", "load", "store",
    "load_annot_run", "store_annot_run",
)
_FAST_GSHARE_KERNELS = ("branch_block", "branch_block_annot_run")


def fast_factory_source():
    """Source of ``make_kernels(m, Machine, SimulationLimitReached)``.

    The factory binds one machine instance's constants and returns a
    dict of specialized kernels; gshare-only kernels are included only
    when the machine's conditional predictor is a gshare (other
    predictor kinds keep the reference methods).
    """
    parts = [
        "def make_kernels(m, Machine, SimulationLimitReached):",
        "    counts = m._class_counts",
        "    inv_width = m._inv_width",
        "    penalty = m.mispredict_penalty",
        "    bulk_rate = m.bulk_miss_rate",
        "    btb = m.btb",
        "    targets = btb.targets",
        "    mask = btb.mask",
        "    gshare = m._gshare",
        "    l1 = m._l1",
        "    l1_shift = m._l1_shift",
        "    l1_mask = m._l1_mask",
        "    l1_sets = m._l1_sets",
        "    dc_access = m._dc_access",
        "    load_cost = m._load_cost",
        "    store_cost = m._store_cost",
        "    ref_dispatch_event = Machine.dispatch_event",
        "    ref_dispatch_event2 = Machine.dispatch_event2",
        "    ref_dispatch_run = Machine.dispatch_run",
        "    ref_quick_run = Machine.quick_run",
        "    ref_annot_run = Machine.annot_run",
        "    _PRIM = _PRIMITIVE",
        _fast_gate_helpers(),
        "    bba_gate = {}",
        "    load_annot_run_gate = {}",
        "    store_annot_run_gate = {}",
        _fast_event_source(False),
        _fast_event_source(True),
        _fast_run_source("run"),
        _fast_run_source("quick"),
        _fast_exec_block_source(),
        _fast_annot_run_source(),
        _fast_mem_source(False, False),
        _fast_mem_source(True, False),
        _fast_mem_source(False, True),
        _fast_mem_source(True, True),
        "    kernels = {",
    ]
    for name in _FAST_KERNELS:
        parts.append("        %r: %s," % (name, name))
    parts += [
        "    }",
        "    if gshare is not None:",
        "        gmask = gshare.mask",
        "        gtable = gshare.table",
        _indent(_fast_branch_block_source(False), "    "),
        _indent(_fast_branch_block_source(True), "    "),
    ]
    for name in _FAST_GSHARE_KERNELS:
        parts.append("        kernels[%r] = %s" % (name, name))
    parts += [
        "    return kernels",
    ]
    return "\n".join(parts) + "\n"


class _Primitive(object):
    """Gate-cache sentinel: this tag needs the per-primitive path."""

    __slots__ = ()

    def __repr__(self):
        return "<PRIMITIVE>"


_PRIMITIVE = _Primitive()

_FAST_FACTORY = None


def fast_kernel_factory():
    """The compiled ``make_kernels`` factory (built once per process)."""
    global _FAST_FACTORY
    if _FAST_FACTORY is None:
        namespace = {"_PRIMITIVE": _PRIMITIVE}
        code = compile(fast_factory_source(), "<kernelspec:fast>", "exec")
        exec(code, namespace)
        _FAST_FACTORY = namespace["make_kernels"]
    return _FAST_FACTORY


def fast_kernel_names(gshare):
    names = _FAST_KERNELS + (_FAST_GSHARE_KERNELS if gshare else ())
    return names
