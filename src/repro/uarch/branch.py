"""Branch predictors: gshare, bimodal, BTB for indirect jumps, and a RAS.

These are real table-based predictors fed the actual branch outcomes of
the simulated instruction stream, so predictability differences between
(say) interpreter dispatch and JIT guard code emerge from the streams
themselves rather than from per-phase constants.
"""


class BimodalPredictor:
    """Classic per-PC 2-bit saturating counter table."""

    __slots__ = ("mask", "table")

    def __init__(self, bits=12):
        self.mask = (1 << bits) - 1
        self.table = bytearray(b"\x01" * (1 << bits))  # weakly not-taken

    def reset(self):
        """Reinitialize in place (the table object identity is stable)."""
        self.table[:] = b"\x01" * len(self.table)

    def predict_and_update(self, pc, taken):
        """Return True if the prediction was wrong."""
        index = pc & self.mask
        counter = self.table[index]
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        return predicted_taken != taken


class GsharePredictor:
    """Gshare: global history XOR pc indexing a 2-bit counter table."""

    __slots__ = ("bits", "mask", "table", "history")

    def __init__(self, bits=12):
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.table = bytearray(b"\x01" * (1 << bits))
        self.history = 0

    def reset(self):
        """Reinitialize in place (the table object identity is stable)."""
        self.table[:] = b"\x01" * len(self.table)
        self.history = 0

    def predict_and_update(self, pc, taken):
        mask = self.mask
        history = self.history
        table = self.table
        index = (pc ^ history) & mask
        counter = table[index]
        if taken:
            if counter < 3:
                table[index] = counter + 1
            self.history = ((history << 1) | 1) & mask
        else:
            if counter > 0:
                table[index] = counter - 1
            self.history = (history << 1) & mask
        return (counter >= 2) != taken


class AlwaysTakenPredictor:
    """Degenerate baseline used by ablation benches."""

    __slots__ = ()

    def reset(self):
        pass

    def predict_and_update(self, pc, taken):
        return not taken


class Btb:
    """Indirect-branch target predictor (ITTAGE-lite).

    Indexes the target table with the jump pc XOR a global history of
    recent indirect targets, as modern predictors do — this is why Rohou
    et al. (cited by the paper) find interpreter dispatch cheap on
    Haswell: regular bytecode sequences become fully predictable, while
    data-dependent dispatch still mispredicts.
    """

    __slots__ = ("mask", "targets", "history")

    def __init__(self, entries=512):
        self.mask = entries - 1
        if entries & self.mask:
            raise ValueError("btb entries must be a power of two")
        self.targets = [0] * entries
        self.history = 0

    def reset(self):
        """Reinitialize in place (the target list identity is stable)."""
        targets = self.targets
        for i in range(len(targets)):
            targets[i] = 0
        self.history = 0

    def predict_and_update(self, pc, target):
        history = self.history
        mask = self.mask
        targets = self.targets
        index = (pc ^ history) & mask
        mispredicted = targets[index] != target
        targets[index] = target
        self.history = ((history << 3) ^ (target & 0x3FF)) & mask
        return mispredicted


class ReturnAddressStack:
    """Fixed-depth RAS; overflows wrap (as in real hardware)."""

    __slots__ = ("entries", "stack", "top")

    def __init__(self, entries=16):
        self.entries = entries
        self.stack = [0] * entries
        self.top = 0

    def reset(self):
        stack = self.stack
        for i in range(len(stack)):
            stack[i] = 0
        self.top = 0

    def push(self, return_pc):
        self.top = (self.top + 1) % self.entries
        self.stack[self.top] = return_pc

    def predict_and_pop(self, actual_return_pc):
        predicted = self.stack[self.top]
        self.top = (self.top - 1) % self.entries
        return predicted != actual_return_pc
