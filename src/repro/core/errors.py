"""Exception hierarchy shared across the repro packages."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class IsaError(ReproError):
    """Malformed virtual-ISA instruction or stream event."""


class TraceError(ReproError):
    """The meta-tracer encountered an unrecoverable condition."""


class TraceAbort(ReproError):
    """Internal signal: the current trace recording must be abandoned.

    Carries a ``reason`` string used by the JIT log (mirrors the
    ``trace-abort`` events of the RPython jitlog).
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class CompilationError(ReproError):
    """Raised when a guest program cannot be compiled to bytecode/AST."""


class VerificationError(ReproError):
    """A static verification pass found errors (see repro.analysis).

    Carries the :class:`repro.analysis.diagnostics.Report` whose error
    findings triggered the failure, so callers can inspect or serialize
    the individual findings.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class GuestError(ReproError):
    """A guest-language runtime error (uncaught at the guest level)."""

    def __init__(self, message, w_value=None):
        super().__init__(message)
        self.w_value = w_value
