from repro.core import tags


def test_tag_values_unique():
    values = [v for k, v in vars(tags).items()
              if k.isupper() and isinstance(v, int)]
    assert len(values) == len(set(values))


def test_tag_name_roundtrip():
    assert tags.tag_name(tags.TRACE_START) == "TRACE_START"
    assert tags.tag_name(tags.DISPATCH) == "DISPATCH"
    assert tags.tag_name(tags.GC_MINOR_STOP) == "GC_MINOR_STOP"


def test_tag_name_unknown():
    assert tags.tag_name(0x9999).startswith("UNKNOWN_")


def test_phase_tags():
    assert tags.is_phase_tag(tags.TRACE_START)
    assert tags.is_phase_tag(tags.GC_MAJOR_START)
    assert not tags.is_phase_tag(tags.DISPATCH)
    assert not tags.is_phase_tag(tags.APP_EVENT)


def test_layer_blocks():
    # Framework tags in 0x100 block, interpreter in 0x200, etc.
    assert 0x100 <= tags.TRACE_START < 0x200
    assert 0x200 <= tags.DISPATCH < 0x300
    assert 0x300 <= tags.IR_NODE < 0x400
    assert 0x400 <= tags.APP_EVENT < 0x500
