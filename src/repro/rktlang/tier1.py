"""TinyScheme tier-1 policy: entry-profiled promotion.

TinyScheme compiles to the shared bytecode format (RktVM inherits the
TinyPy dispatch loop wholesale, the Pycket-on-RPython story), so the
threaded-code *compiler* is the shared one in :mod:`repro.pylang.tier1`.
What is guest-specific is the promotion policy: idiomatic Scheme loops
are tail-recursive named lets and helper functions, which the
backward-jump-only counter TinyPy uses would never see — a ``(let loop
...)`` body re-enters through ``push_call_frame``, not through a
backward ``JUMP``.  The Scheme tier therefore also counts frame entries
(``entry_profiling``), the same reason Pycket gives RPython's JitDriver
a ``should_unroll_one_iteration`` hint keyed on application rather than
loop back-edges.
"""

from repro.pylang.tier1 import TierSpec

RKT_TIER = TierSpec("tinyscheme", entry_profiling=True)
