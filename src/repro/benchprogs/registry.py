"""Benchmark program registry.

Programs live as TinyPy source files (which are also valid host-Python,
so tests can cross-check guest output against CPython itself) and
TinyRkt source files.  Each program has a single ``N = <int>`` scaling
line that the harness rewrites to control workload size.

``suite`` tags mirror the paper's two suites: ``pypy`` (Table I,
Figures 2/3/5-9) and ``clbg`` (Table II, Figure 4).
"""

import os
import re

_HERE = os.path.dirname(__file__)

_N_LINE = {
    "tinypy": re.compile(r"^N = \d+$", re.MULTILINE),
    "tinyrkt": re.compile(r"^\(define N \d+\)$", re.MULTILINE),
}
_N_SUB = {
    "tinypy": "N = %d",
    "tinyrkt": "(define N %d)",
}


class BenchProgram(object):
    def __init__(self, name, language, filename, suites, default_n,
                 small_n):
        self.name = name
        self.language = language  # "tinypy" | "tinyrkt"
        self.filename = filename
        self.suites = suites
        self.default_n = default_n
        self.small_n = small_n  # quick-test size

    def source(self, n=None):
        path = os.path.join(_HERE, self.language, self.filename)
        with open(path) as handle:
            text = handle.read()
        if n is not None:
            pattern = _N_LINE[self.language]
            text, count = pattern.subn(_N_SUB[self.language] % n, text,
                                       count=1)
            if not count:
                raise ValueError("no N line in %s" % self.filename)
        return text

    def __repr__(self):
        return "<BenchProgram %s/%s>" % (self.language, self.name)


def _p(name, filename, suites, default_n, small_n, language="tinypy"):
    return BenchProgram(name, language, filename, suites, default_n,
                        small_n)


PY_PROGRAMS = [
    _p("richards", "richards.py", ("pypy",), 4, 1),
    _p("crypto_pyaes", "crypto_pyaes.py", ("pypy",), 10, 2),
    _p("chaos", "chaos.py", ("pypy",), 2500, 300),
    _p("telco", "telco.py", ("pypy",), 1500, 200),
    _p("spectralnorm", "spectralnorm.py", ("pypy", "clbg"), 40, 12),
    _p("django", "django_tpl.py", ("pypy",), 70, 8),
    _p("float", "float_bench.py", ("pypy",), 15, 2),
    _p("ai", "ai_nqueens.py", ("pypy",), 8, 5),
    _p("raytrace", "raytrace.py", ("pypy",), 20, 6),
    _p("json_bench", "json_bench.py", ("pypy",), 40, 4),
    _p("pidigits", "pidigits.py", ("pypy", "clbg"), 120, 20),
    _p("fannkuch", "fannkuch.py", ("pypy", "clbg"), 7, 5),
    _p("nbody", "nbody.py", ("pypy", "clbg"), 2500, 150),
    _p("deltablue", "deltablue.py", ("pypy",), 20, 4),
    _p("pyflate", "pyflate.py", ("pypy",), 40, 4),
    _p("spitfire", "spitfire.py", ("pypy",), 30, 3),
    _p("meteor", "meteor.py", ("pypy", "clbg"), 60, 6),
    _p("eparse", "eparse.py", ("pypy",), 60, 5),
    _p("bm_mdp", "bm_mdp.py", ("pypy",), 25, 3),
    _p("hexiom", "hexiom.py", ("pypy",), 4, 3),
    _p("sympy_str", "sympy_str.py", ("pypy",), 40, 4),
    _p("twisted_iteration", "twisted_iter.py", ("pypy",), 300, 20),
    _p("spambayes", "spambayes.py", ("pypy",), 60, 6),
    _p("binarytrees", "binarytrees.py", ("clbg",), 8, 6),
    _p("fasta", "fasta.py", ("clbg",), 1200, 150),
    _p("knucleotide", "knucleotide.py", ("clbg",), 4000, 500),
    _p("mandelbrot", "mandelbrot.py", ("clbg",), 64, 20),
    _p("revcomp", "revcomp.py", ("clbg",), 8000, 800),
]

RKT_PROGRAMS = []  # populated below once TinyRkt programs exist


def _register_rkt():
    global RKT_PROGRAMS
    rkt_dir = os.path.join(_HERE, "tinyrkt")
    if not os.path.isdir(rkt_dir):
        return
    sizes = {
        "binarytrees": (7, 5), "fannkuch": (7, 5), "fasta": (800, 150),
        "mandelbrot": (56, 20), "nbody": (2000, 150),
        "pidigits": (100, 20), "spectralnorm": (36, 12),
    }
    programs = []
    for filename in sorted(os.listdir(rkt_dir)):
        if not filename.endswith(".rkt"):
            continue
        name = filename[:-4]
        default_n, small_n = sizes.get(name, (10, 2))
        programs.append(BenchProgram(
            name, "tinyrkt", filename, ("clbg",), default_n, small_n))
    RKT_PROGRAMS = programs


_register_rkt()


def py_program(name):
    for program in PY_PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(name)


def rkt_program(name):
    for program in RKT_PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(name)


def pypy_suite():
    return [p for p in PY_PROGRAMS if "pypy" in p.suites]


def clbg_python():
    return [p for p in PY_PROGRAMS if "clbg" in p.suites]
