from hypothesis import given, strategies as st

from repro.uarch.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    Btb,
    GsharePredictor,
    ReturnAddressStack,
)


def run_stream(predictor, stream):
    return sum(predictor.predict_and_update(pc, taken) for pc, taken in stream)


def test_bimodal_learns_biased_branch():
    predictor = BimodalPredictor()
    stream = [(0x40, True)] * 100
    misses = run_stream(predictor, stream)
    assert misses <= 2  # warms up after one or two updates


def test_bimodal_alternating_branch_hurts():
    predictor = BimodalPredictor()
    stream = [(0x40, i % 2 == 0) for i in range(200)]
    misses = run_stream(predictor, stream)
    assert misses >= 80  # bimodal cannot learn strict alternation


def test_gshare_learns_alternating_pattern():
    predictor = GsharePredictor()
    stream = [(0x40, i % 2 == 0) for i in range(400)]
    misses = run_stream(predictor, stream)
    # History-based prediction learns the period-2 pattern.
    assert misses < 60


def test_gshare_learns_loop_exit_pattern():
    predictor = GsharePredictor()
    # A loop of 8 iterations: 7 taken, 1 not-taken, repeated.
    stream = []
    for _ in range(60):
        stream.extend([(0x80, True)] * 7 + [(0x80, False)])
    misses = run_stream(predictor, stream)
    assert misses / len(stream) < 0.10


def test_always_taken():
    predictor = AlwaysTakenPredictor()
    assert not predictor.predict_and_update(0, True)
    assert predictor.predict_and_update(0, False)


def test_btb_monomorphic_indirect_predicts():
    btb = Btb(64)
    misses = sum(btb.predict_and_update(0x10, 0xAAA) for _ in range(50))
    assert misses <= 3  # cold misses while history settles


def test_btb_learns_alternating_targets():
    # ITTAGE-style history indexing learns regular target sequences
    # (why threaded interpreter dispatch is cheap on modern hardware).
    btb = Btb(256)
    misses = 0
    for i in range(400):
        misses += btb.predict_and_update(0x10, 0xAAA if i % 2 else 0xBBB)
    assert misses < 40


def test_btb_random_targets_mispredict():
    import random

    rng = random.Random(42)
    btb = Btb(64)
    targets = [rng.randrange(1, 1000) for _ in range(400)]
    misses = sum(btb.predict_and_update(0x10, t) for t in targets)
    assert misses > 300  # data-dependent targets stay unpredictable


def test_ras_balanced_calls_predict():
    ras = ReturnAddressStack(16)
    misses = 0
    for depth in range(8):
        ras.push(depth)
    for depth in reversed(range(8)):
        misses += ras.predict_and_pop(depth)
    assert misses == 0


def test_ras_overflow_wraps():
    ras = ReturnAddressStack(4)
    for depth in range(10):
        ras.push(depth)
    # The oldest entries were overwritten; deep returns mispredict.
    misses = sum(ras.predict_and_pop(d) for d in reversed(range(10)))
    assert misses > 0


@given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()),
                max_size=300))
def test_predictors_never_crash_and_count_bounded(stream):
    for predictor in (BimodalPredictor(6), GsharePredictor(6)):
        misses = run_stream(predictor, list(stream))
        assert 0 <= misses <= len(stream)
