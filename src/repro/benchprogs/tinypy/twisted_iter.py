# twisted_iteration: a cooperative event-reactor microbenchmark —
# callback chains scheduled through a reactor queue (deferred-style).
# Object dispatch + list-queue heavy, like the paper's twisted rows.
N = 300


class Deferred:
    def __init__(self):
        self.callbacks = []
        self.result = None
        self.fired = False

    def add_callback(self, fn_name, owner):
        self.callbacks.append((fn_name, owner))
        if self.fired:
            self._run()
        return self

    def callback(self, result):
        self.result = result
        self.fired = True
        self._run()

    def _run(self):
        while len(self.callbacks) > 0:
            pair = self.callbacks.pop(0)
            owner = pair[1]
            self.result = owner.dispatch(pair[0], self.result)


class Reactor:
    def __init__(self):
        self.queue = []
        self.processed = 0

    def call_later(self, task):
        self.queue.append(task)

    def run(self):
        while len(self.queue) > 0:
            task = self.queue.pop(0)
            task.fire(self)
            self.processed += 1


class Worker:
    def __init__(self, ident):
        self.ident = ident
        self.total = 0

    def dispatch(self, name, value):
        if name == "double":
            return value * 2
        if name == "inc":
            return value + 1
        if name == "mod":
            return value % 99991
        return value

    def fire(self, reactor):
        d = Deferred()
        d.add_callback("double", self)
        d.add_callback("inc", self)
        d.add_callback("mod", self)
        d.callback(self.ident + self.total)
        self.total = (self.total + d.result) % 1000003
        if self.total % 7 != 0:
            pass
        else:
            reactor.call_later(self)


def run_twisted(rounds):
    reactor = Reactor()
    workers = []
    for i in range(24):
        workers.append(Worker(i))
    checksum = 0
    for r in range(rounds):
        for w in workers:
            reactor.call_later(w)
        reactor.run()
        for w in workers:
            checksum = (checksum + w.total) % 1000000007
    print("twisted_iteration", checksum, reactor.processed)


run_twisted(N)
