"""The virtual ISA: instruction classes and mixes.

We do not model instruction *encodings*; the unit the machine consumes is
an instruction-class event.  This is the same abstraction level a PinTool
sees after decoding: what matters for the paper's characterization is the
dynamic class mix (loads, stores, branches, ALU, ...) plus the special
``NOP_ANNOT`` carrying a cross-layer annotation tag.

An *instruction mix* is a tuple of ``(klass, count)`` pairs; mixes are the
bulk currency between code emitters (interpreter handlers, JIT backend,
GC, runtime functions) and the machine.  Build them once at import time
with :func:`mix` and reuse them — they are immutable.
"""

from repro.core.errors import IsaError

# Instruction classes (small ints; order is load-bearing for tables).
ALU = 0        # integer add/sub/logic/cmp/lea/mov reg-reg
MUL = 1
DIV = 2
FPU = 3        # floating-point arithmetic
LOAD = 4
STORE = 5
BR_COND = 6    # conditional branch
BR_IND = 7    # indirect jump (e.g. interpreter dispatch)
CALL = 8
RET = 9
NOP_ANNOT = 10  # tagged nop: the cross-layer annotation carrier
BR_BULK = 11    # bulk conditional branch: predicted at a calibrated rate
                # (used inside interpreter handlers / runtime code whose
                # individual branches are not simulated one by one)

N_CLASSES = 12

CLASS_NAMES = (
    "alu", "mul", "div", "fpu", "load", "store",
    "br_cond", "br_ind", "call", "ret", "nop_annot", "br_bulk",
)

_BRANCH_CLASSES = frozenset((BR_COND, BR_IND, CALL, RET))


def is_branch_class(klass):
    return klass in _BRANCH_CLASSES


def mix(**kwargs):
    """Build an instruction mix from class names.

    >>> mix(alu=3, load=2)
    ((0, 3), (4, 2))
    """
    pairs = []
    for name, count in kwargs.items():
        try:
            klass = CLASS_NAMES.index(name)
        except ValueError:
            raise IsaError("unknown instruction class %r" % name)
        if count < 0:
            raise IsaError("negative count for class %r" % name)
        if is_branch_class(klass):
            raise IsaError(
                "branch class %r must be emitted via Machine.branch()" % name
            )
        if count:
            pairs.append((klass, count))
    return tuple(pairs)


def mix_size(pairs):
    """Total number of instructions in a mix."""
    return sum(count for _, count in pairs)


def scale_mix(pairs, factor):
    """Multiply every count in a mix by an integer factor."""
    if factor < 0:
        raise IsaError("negative mix scale factor")
    return tuple((klass, count * factor) for klass, count in pairs)


def add_mixes(*mixes):
    """Sum several mixes into one."""
    totals = {}
    for pairs in mixes:
        for klass, count in pairs:
            totals[klass] = totals.get(klass, 0) + count
    return tuple(sorted(totals.items()))


# Frequently used canonical mixes.
EMPTY_MIX = ()
