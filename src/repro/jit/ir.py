"""The JIT trace intermediate representation.

Operation numbers, names, categories (the paper's Figure 7 grouping:
memop / guard / call / ctrl / int / new / float / str / ptr / unicode),
and the operation object recorded by the meta-tracer.

Like RPython's ResOperation, an :class:`IROp` *is* its own result
variable: arguments of later operations reference earlier operation
objects (or :class:`Const`).
"""

_OPS = []


def _op(name, category, effects="none"):
    """Register an operation; returns its opnum."""
    opnum = len(_OPS)
    _OPS.append((name, category, effects))
    return opnum


# -- categories ------------------------------------------------------------
CAT_MEMOP = "memop"
CAT_GUARD = "guard"
CAT_CALL = "call"
CAT_CTRL = "ctrl"
CAT_INT = "int"
CAT_NEW = "new"
CAT_FLOAT = "float"
CAT_STR = "str"
CAT_PTR = "ptr"
CAT_UNICODE = "unicode"

CATEGORIES = (
    CAT_MEMOP, CAT_GUARD, CAT_CALL, CAT_CTRL, CAT_INT,
    CAT_NEW, CAT_FLOAT, CAT_STR, CAT_PTR, CAT_UNICODE,
)

# -- memory operations -------------------------------------------------------
GETFIELD_GC = _op("getfield_gc", CAT_MEMOP)
GETFIELD_GC_PURE = _op("getfield_gc_pure", CAT_MEMOP)
SETFIELD_GC = _op("setfield_gc", CAT_MEMOP, effects="heap")
GETARRAYITEM_GC = _op("getarrayitem_gc", CAT_MEMOP)
SETARRAYITEM_GC = _op("setarrayitem_gc", CAT_MEMOP, effects="heap")
ARRAYLEN_GC = _op("arraylen_gc", CAT_MEMOP)

# -- guards ------------------------------------------------------------------
GUARD_TRUE = _op("guard_true", CAT_GUARD)
GUARD_FALSE = _op("guard_false", CAT_GUARD)
GUARD_VALUE = _op("guard_value", CAT_GUARD)
GUARD_CLASS = _op("guard_class", CAT_GUARD)
GUARD_NONNULL = _op("guard_nonnull", CAT_GUARD)
GUARD_ISNULL = _op("guard_isnull", CAT_GUARD)
GUARD_NO_OVERFLOW = _op("guard_no_overflow", CAT_GUARD)
GUARD_OVERFLOW = _op("guard_overflow", CAT_GUARD)

# -- calls ---------------------------------------------------------------------
CALL = _op("call", CAT_CALL, effects="any")
CALL_PURE = _op("call_pure", CAT_CALL)
CALL_ASSEMBLER = _op("call_assembler", CAT_CALL, effects="any")

# -- control -----------------------------------------------------------------
LABEL = _op("label", CAT_CTRL)
JUMP = _op("jump", CAT_CTRL)
FINISH = _op("finish", CAT_CTRL)
DEBUG_MERGE_POINT = _op("debug_merge_point", CAT_CTRL)

# -- integer ops ---------------------------------------------------------------
INT_ADD = _op("int_add", CAT_INT)
INT_SUB = _op("int_sub", CAT_INT)
INT_MUL = _op("int_mul", CAT_INT)
INT_FLOORDIV = _op("int_floordiv", CAT_INT)
INT_MOD = _op("int_mod", CAT_INT)
INT_AND = _op("int_and", CAT_INT)
INT_OR = _op("int_or", CAT_INT)
INT_XOR = _op("int_xor", CAT_INT)
INT_LSHIFT = _op("int_lshift", CAT_INT)
INT_RSHIFT = _op("int_rshift", CAT_INT)
INT_NEG = _op("int_neg", CAT_INT)
INT_INVERT = _op("int_invert", CAT_INT)
INT_ADD_OVF = _op("int_add_ovf", CAT_INT)
INT_SUB_OVF = _op("int_sub_ovf", CAT_INT)
INT_MUL_OVF = _op("int_mul_ovf", CAT_INT)
INT_LT = _op("int_lt", CAT_INT)
INT_LE = _op("int_le", CAT_INT)
INT_EQ = _op("int_eq", CAT_INT)
INT_NE = _op("int_ne", CAT_INT)
INT_GT = _op("int_gt", CAT_INT)
INT_GE = _op("int_ge", CAT_INT)
INT_IS_TRUE = _op("int_is_true", CAT_INT)
INT_IS_ZERO = _op("int_is_zero", CAT_INT)

# -- allocation ------------------------------------------------------------------
NEW_WITH_VTABLE = _op("new_with_vtable", CAT_NEW)
NEW_ARRAY = _op("new_array", CAT_NEW)

# -- float ops ---------------------------------------------------------------------
FLOAT_ADD = _op("float_add", CAT_FLOAT)
FLOAT_SUB = _op("float_sub", CAT_FLOAT)
FLOAT_MUL = _op("float_mul", CAT_FLOAT)
FLOAT_TRUEDIV = _op("float_truediv", CAT_FLOAT)
FLOAT_NEG = _op("float_neg", CAT_FLOAT)
FLOAT_ABS = _op("float_abs", CAT_FLOAT)
FLOAT_SQRT = _op("float_sqrt", CAT_FLOAT)
FLOAT_LT = _op("float_lt", CAT_FLOAT)
FLOAT_LE = _op("float_le", CAT_FLOAT)
FLOAT_EQ = _op("float_eq", CAT_FLOAT)
FLOAT_NE = _op("float_ne", CAT_FLOAT)
FLOAT_GT = _op("float_gt", CAT_FLOAT)
FLOAT_GE = _op("float_ge", CAT_FLOAT)
CAST_INT_TO_FLOAT = _op("cast_int_to_float", CAT_FLOAT)
CAST_FLOAT_TO_INT = _op("cast_float_to_int", CAT_FLOAT)

# -- string ops (interpreter-internal byte strings) ---------------------------------
STRLEN = _op("strlen", CAT_STR)
STRGETITEM = _op("strgetitem", CAT_STR)
STR_EQ = _op("str_eq", CAT_STR)
STR_CONCAT = _op("str_concat", CAT_STR)

# -- pointer ops ----------------------------------------------------------------------
PTR_EQ = _op("ptr_eq", CAT_PTR)
PTR_NE = _op("ptr_ne", CAT_PTR)
SAME_AS = _op("same_as", CAT_PTR)

# -- unicode ops (guest-level strings) ---------------------------------------------------
UNICODELEN = _op("unicodelen", CAT_UNICODE)
UNICODEGETITEM = _op("unicodegetitem", CAT_UNICODE)
UNICODE_EQ = _op("unicode_eq", CAT_UNICODE)
UNICODE_CONCAT = _op("unicode_concat", CAT_UNICODE)

N_OPS = len(_OPS)

OP_NAMES = tuple(entry[0] for entry in _OPS)
OP_CATEGORIES = tuple(entry[1] for entry in _OPS)
OP_EFFECTS = tuple(entry[2] for entry in _OPS)

_NAME_TO_OPNUM = {entry[0]: i for i, entry in enumerate(_OPS)}


def opnum_by_name(name):
    return _NAME_TO_OPNUM[name]


GUARDS = frozenset(
    i for i in range(N_OPS) if OP_CATEGORIES[i] == CAT_GUARD
)

# Pure operations are candidates for constant folding and CSE.
PURE_OPS = frozenset(
    i for i in range(N_OPS)
    if OP_CATEGORIES[i] in (CAT_INT, CAT_FLOAT, CAT_STR, CAT_PTR,
                            CAT_UNICODE)
    and i not in (SAME_AS,)
) | {GETFIELD_GC_PURE, CALL_PURE, ARRAYLEN_GC, STRLEN, UNICODELEN}

# Operations with observable heap effects (heapcache invalidation points).
EFFECT_OPS = frozenset(
    i for i in range(N_OPS) if OP_EFFECTS[i] != "none"
)

# Overflow-checked arithmetic (followed by guard_no_overflow/guard_overflow).
OVF_OPS = frozenset((INT_ADD_OVF, INT_SUB_OVF, INT_MUL_OVF))


class Const(object):
    """A compile-time constant in a trace."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def is_constant(self):
        return True

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class IROp(object):
    """One recorded trace operation; doubles as its own result variable."""

    __slots__ = ("opnum", "args", "descr", "snapshot", "index",
                 "fail_count", "bridge")

    def __init__(self, opnum, args, descr=None):
        self.opnum = opnum
        self.args = args
        self.descr = descr
        self.snapshot = None   # guards: resume snapshot
        self.index = -1        # position assigned at compile time
        self.fail_count = 0    # guards: runtime failure counter
        self.bridge = None     # guards: attached bridge trace

    def is_constant(self):
        return False

    @property
    def name(self):
        return OP_NAMES[self.opnum]

    @property
    def category(self):
        return OP_CATEGORIES[self.opnum]

    def is_guard(self):
        return self.opnum in GUARDS

    def __repr__(self):
        parts = []
        for arg in self.args:
            if isinstance(arg, Const):
                parts.append(repr(arg.value))
            elif isinstance(arg, IROp):
                parts.append("v%d" % arg.index)
            else:
                parts.append(repr(arg))
        descr = " [%s]" % (self.descr,) if self.descr is not None else ""
        return "%s(%s)%s" % (self.name, ", ".join(parts), descr)


class FieldDescr(object):
    """Descriptor for a (class, field) pair used by get/setfield ops."""

    __slots__ = ("cls", "field", "immutable", "offset")
    _registry = {}

    def __init__(self, cls, field, immutable, offset):
        self.cls = cls
        self.field = field
        self.immutable = immutable
        self.offset = offset

    @classmethod
    def get(cls, owner_class, field):
        key = (owner_class, field)
        descr = cls._registry.get(key)
        if descr is None:
            immutable_fields = getattr(owner_class, "_immutable_fields_", ())
            # Field offsets: order of first use, 8 bytes apart, after the
            # 8-byte object header.
            offset = 8 + 8 * sum(
                1 for (k_cls, _) in cls._registry if k_cls is owner_class
            )
            descr = cls(owner_class, field, field in immutable_fields, offset)
            cls._registry[key] = descr
        return descr

    def __repr__(self):
        return "%s.%s" % (self.cls.__name__, self.field)


class CallDescr(object):
    """Descriptor for residual calls: which AOT function is the target."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __repr__(self):
        return self.func.name
