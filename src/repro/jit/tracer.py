"""The meta-tracer: records the interpreter's operations into a trace.

When a guest loop header becomes hot, the JitDriver activates a
MetaTracer.  The interpreter keeps executing normally, but every LLOps
operation is recorded as IR (see :mod:`repro.interp.llops`).  The tracer
owns the recording state:

* the op list and the trace-limit/abort logic,
* record-time known-class caching (avoids redundant guard_class),
* resume snapshots at every merge point,
* the guard-after-effect hazard check that keeps bytecode-granularity
  deoptimization sound,
* trace closing: loop back to the entry, or jump into another compiled
  trace (how bridges attach to loops).
"""

from repro.core import tags
from repro.interp.objects import TBox, concrete, unwrap_frame
from repro.jit import costs, ir
from repro.jit.optimizer import optimize_trace
from repro.jit.resume import FrameState, Snapshot
from repro.jit.trace import LOOP, InputArg, Trace


class MetaTracer(object):
    """Recording state for one loop or bridge trace."""

    def __init__(self, ctx, kind, greenkey, root_depth,
                 parent_guard=None):
        self.ctx = ctx
        self.kind = kind
        self.greenkey = greenkey
        self.root_depth = root_depth  # index of the root frame
        self.parent_guard = parent_guard
        self.ops = []
        self.inputargs = []
        self.entry_layout = None
        self.last_snapshot = None
        self.hazard = False
        self.known_classes = {}
        self.merge_points_seen = 0
        self.trace_limit = ctx.config.jit.trace_limit
        self.interp = None
        # When recording must stop mid-bytecode (trace too long, unsafe
        # guard), we cannot unwind the running interpreter handler, so we
        # mark the trace dead and the driver aborts it cleanly at the
        # next dispatch boundary.
        self.dead = None

    # -- lifecycle ----------------------------------------------------------------

    def begin(self, interp):
        """Start recording: wrap live frame state into input TBoxes."""
        self.interp = interp
        tag = tags.TRACE_START if self.kind == LOOP else tags.BRIDGE_START
        self.ctx.annot(tag, self.greenkey)
        t = self.ctx.telemetry
        if t is not None:
            t.count("jit.tracer.recordings_started")
        frames = interp.frames[self.root_depth:]
        layout = []
        for frame in frames:
            layout.append(
                (frame.code, frame.pc, len(frame.locals), len(frame.stack))
            )
            for i, value in enumerate(frame.locals):
                arg = InputArg()
                self.inputargs.append(arg)
                frame.locals[i] = TBox(concrete(value), arg, self)
            for i, value in enumerate(frame.stack):
                arg = InputArg()
                self.inputargs.append(arg)
                frame.stack[i] = TBox(concrete(value), arg, self)
        self.entry_layout = layout
        self.ctx.tracer = self

    def _unwrap_frames(self):
        # Unwrap the whole stack: if the root frame returned during
        # tracing, its boxed return value sits on the caller's stack
        # below the trace root.
        for frame in self.interp.frames:
            unwrap_frame(frame)

    def abort(self, reason):
        """Abandon this trace; restore raw frame state."""
        self.ctx.tracer = None
        self._unwrap_frames()
        self.ctx.registry.record_abort(self.greenkey, reason)
        if self.ctx.jitlog is not None:
            self.ctx.jitlog.log(
                "abort", trace_kind=self.kind, greenkey=self.greenkey,
                reason=reason, n_ops=len(self.ops),
            )
        t = self.ctx.telemetry
        if t is not None:
            t.count("jit.tracer.aborts")
            t.annotate(outcome="abort", reason=reason,
                       n_ops_recorded=len(self.ops))
        tag = tags.TRACE_STOP if self.kind == LOOP else tags.BRIDGE_STOP
        self.ctx.annot(tag, self.greenkey)

    # -- recording -----------------------------------------------------------------

    def record(self, opnum, args, descr):
        op = ir.IROp(opnum, args, descr)
        if self.dead is not None:
            return op  # recording already abandoned; keep values flowing
        if len(self.ops) >= self.trace_limit:
            self.dead = "trace too long"
            return op
        self.ops.append(op)
        return op

    def record_guard(self, guardnum, args, descr):
        if self.hazard and self.dead is None:
            # A non-re-executable call happened since the last merge
            # point: deoptimizing at this guard would replay it.
            self.dead = "guard after non-idempotent call"
        op = self.record(guardnum, args, descr)
        op.snapshot = self.last_snapshot
        return op

    def guard_class(self, ir_value, cls):
        """Record guard_class unless the class is already known."""
        if ir_value.is_constant():
            return
        if self.known_classes.get(ir_value) is cls:
            return
        self.record_guard(ir.GUARD_CLASS, [ir_value, ir.Const(cls)], None)
        self.known_classes[ir_value] = cls

    def set_known_class(self, ir_value, cls):
        self.known_classes[ir_value] = cls

    def mark_hazard(self):
        self.hazard = True

    def invalidate_caches(self):
        # Class-of-object facts survive arbitrary calls (classes are
        # immutable); record-time field caches would be dropped here.
        pass

    # -- merge points -----------------------------------------------------------------

    def snapshot_now(self):
        frames = []
        for frame in self.interp.frames[self.root_depth:]:
            frames.append(FrameState(
                frame.code,
                frame.pc,
                tuple(self._ir_of(v) for v in frame.locals),
                tuple(self._ir_of(v) for v in frame.stack),
                getattr(frame, "snapshot_extra", None),
            ))
        return Snapshot(tuple(frames))

    def _ir_of(self, value):
        if type(value) is TBox:
            if value.owner is not self:
                self.dead = "stale trace box"
                return ir.Const(value.value)
            return value.ir
        return ir.Const(value)

    def record_merge_point(self, greenkey):
        """One guest bytecode boundary during tracing."""
        self.merge_points_seen += 1
        snapshot = self.snapshot_now()
        self.last_snapshot = snapshot
        op = self.record(ir.DEBUG_MERGE_POINT, [], greenkey)
        op.snapshot = snapshot
        self.hazard = False
        return op

    def current_depth(self):
        return len(self.interp.frames)

    # -- closing ---------------------------------------------------------------------------

    def _flatten_top_frame(self):
        frame = self.interp.frames[-1]
        values = [self._ir_of(v) for v in frame.locals]
        values.extend(self._ir_of(v) for v in frame.stack)
        return values

    def close_loop(self):
        """Close the trace as a loop back to its own entry."""
        jump_args = self._flatten_top_frame()
        jump = ir.IROp(ir.JUMP, jump_args, None)  # descr filled by optimizer
        return self._compile(jump, target=None)

    def close_to_trace(self, target):
        """Close the trace with a jump into another compiled loop."""
        jump_args = self._flatten_top_frame()
        jump = ir.IROp(ir.JUMP, jump_args, target)
        return self._compile(jump, target=target)

    def _compile(self, jump, target):
        ctx = self.ctx
        ctx.tracer = None
        self._unwrap_frames()
        trace_id = ctx.registry.new_trace_id()
        trace = Trace(
            trace_id, self.kind, self.greenkey, self.inputargs,
            [], self.entry_layout,
        )
        trace.recorded_ops = self.ops
        trace.recorded_jump = jump
        ctx.annot(tags.OPT_START, trace_id)
        self._charge_per_op(len(self.ops), costs.OPT_MIX,
                            costs.OPT_BRANCHES, costs.OPT_BRANCH_MISS_RATE)
        optimize_trace(ctx.config.jit, trace, self.ops, jump, target,
                       telemetry=ctx.telemetry)
        ctx.annot(tags.OPT_STOP, trace_id)
        ctx.annot(tags.BACKEND_START, trace_id)
        from repro.jit.backend import attach_costs

        attach_costs(trace, telemetry=ctx.telemetry)
        self._charge_per_op(len(trace.ops), costs.BACKEND_MIX,
                            costs.BACKEND_BRANCHES,
                            costs.BACKEND_BRANCH_MISS_RATE)
        ctx.annot(tags.BACKEND_STOP, trace_id)
        if ctx.config.verify:
            from repro.analysis import validate_optimization, verify_compilation

            verify_compilation(
                ctx.config.jit, trace, recorded_ops=self.ops,
                inputargs=self.inputargs,
            ).raise_if_errors("jit pipeline")
            validate_optimization(
                ctx.config.jit, trace,
            ).raise_if_errors("jit translation validation")
        ctx.registry.register(trace)
        if self.parent_guard is not None:
            self.parent_guard.bridge = trace
        if ctx.jitlog is not None:
            ctx.jitlog.log(
                "compile", trace_kind=self.kind, greenkey=self.greenkey,
                trace_id=trace_id, n_ops_recorded=len(self.ops),
                n_ops_compiled=trace.n_ops, asm_size=trace.asm_size,
                merge_points=self.merge_points_seen,
            )
        t = ctx.telemetry
        if t is not None:
            t.count("jit.tracer.traces_compiled")
            t.count("jit.tracer.ops_recorded", len(self.ops))
            t.count("jit.tracer.ops_compiled", trace.n_ops)
            t.histogram("jit.tracer.trace_length", trace.n_ops)
            t.annotate(outcome="compiled", trace_id=trace_id,
                       n_ops_recorded=len(self.ops),
                       n_ops_compiled=trace.n_ops,
                       asm_size=trace.asm_size,
                       merge_points=self.merge_points_seen)
        tag = tags.TRACE_STOP if self.kind == LOOP else tags.BRIDGE_STOP
        ctx.annot(tag, self.greenkey)
        return trace

    def _charge_per_op(self, n_ops, mix, branches, miss_rate):
        machine = self.ctx.machine
        for _ in range(max(1, n_ops // 8)):
            machine.exec_mix(_scale(mix, 8))
            machine.exec_bulk_branches(branches * 8, miss_rate)


def _scale(mix, factor):
    from repro.isa import insns

    return insns.scale_mix(mix, factor)
